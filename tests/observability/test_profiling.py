"""The stdlib sampling profiler: env knob, sampling, reports, bursts."""

import json
import threading
import time

import pytest

from repro.observability import profiling, tracing
from repro.observability.profiling import Profiler


# -- REPRO_PROFILE parsing -----------------------------------------------------


@pytest.mark.parametrize("word", ["", "0", "off", "false", "no", "disabled"])
def test_configured_hz_off_words(word):
    assert profiling.configured_hz(word) is None


@pytest.mark.parametrize("word", ["1", "on", "true", "yes", "enabled", "ON "])
def test_configured_hz_on_words(word):
    assert profiling.configured_hz(word) == profiling.DEFAULT_HZ


def test_configured_hz_numeric():
    assert profiling.configured_hz("250") == 250.0
    assert profiling.configured_hz("12.5") == 12.5
    assert profiling.configured_hz("-3") is None  # non-positive: off
    assert profiling.configured_hz("1e9") == profiling.MAX_HZ  # clamped


def test_configured_hz_rejects_garbage():
    with pytest.raises(ValueError, match="REPRO_PROFILE"):
        profiling.configured_hz("sometimes")


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert not profiling.enabled()
    assert profiling.ensure_global() is None
    assert profiling.global_profiler() is None


# -- sampling ------------------------------------------------------------------


def _busy_wait(stop: threading.Event) -> None:
    while not stop.wait(0.001):
        sum(range(100))


@pytest.fixture
def busy_thread():
    """A worker to observe: inline sample_once skips its own thread, so
    meaningful samples need at least one other live thread."""
    stop = threading.Event()
    worker = threading.Thread(target=_busy_wait, args=(stop,), name="busy")
    worker.start()
    yield worker
    stop.set()
    worker.join(5)


def test_sample_once_observes_other_threads_not_its_own():
    stop = threading.Event()
    worker = threading.Thread(target=_busy_wait, args=(stop,), name="busy")
    worker.start()
    try:
        profiler = Profiler(hz=50)
        profiler.sample_once()
    finally:
        stop.set()
        worker.join(5)
    collapsed = profiler.collapsed()
    assert collapsed, "no stacks sampled"
    workers = [stack for stack in collapsed if "_busy_wait" in stack]
    assert workers, f"worker thread not sampled: {list(collapsed)}"
    # collapsed stacks are root-first, ;-joined module:function frames
    frames = workers[0].split(";")
    assert all(":" in frame for frame in frames)
    assert frames[0].startswith("threading:")  # root (thread bootstrap) first
    # the sampling thread never records itself
    assert not any("sample_once" in stack for stack in collapsed)


def test_background_sampling_profiles_worker_threads():
    stop = threading.Event()
    worker = threading.Thread(target=_busy_wait, args=(stop,), name="busy")
    worker.start()
    profiler = Profiler(hz=200)
    with profiler:
        time.sleep(0.25)
    stop.set()
    worker.join(5)
    snapshot = profiler.snapshot()
    assert snapshot["samples"] > 0
    assert not snapshot["running"]
    assert snapshot["duration_seconds"] >= 0.2
    assert any("_busy_wait" in stack for stack in snapshot["collapsed"])


def test_profiler_rejects_bad_rates_and_double_start():
    with pytest.raises(ValueError, match="positive"):
        Profiler(hz=0)
    profiler = Profiler(hz=2000)
    assert profiler.hz == profiling.MAX_HZ  # clamped
    profiler.start()
    try:
        with pytest.raises(RuntimeError, match="already running"):
            profiler.start()
    finally:
        profiler.stop()
    profiler.stop()  # idempotent


def test_flamegraph_tree_is_consistent(busy_thread):
    profiler = Profiler(hz=50)
    for _ in range(5):
        profiler.sample_once()
    tree = profiler.flamegraph()
    assert tree["name"] == "root"
    assert tree["value"] == profiler.snapshot()["samples"]
    assert tree["value"] >= 5  # the busy worker appears in every sample

    def check(node):
        if node["children"]:
            assert node["value"] >= sum(c["value"] for c in node["children"])
        for child in node["children"]:
            check(child)

    check(tree)


def test_collapsed_text_is_flamegraph_pl_input(busy_thread):
    profiler = Profiler(hz=50)
    profiler.sample_once()
    lines = profiler.collapsed_text().splitlines()
    assert lines
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert stack and count.isdigit()


def test_unique_stack_overflow_buckets():
    """Past max_unique_stacks, fresh stacks fold into <overflow>."""
    profiler = Profiler(hz=50, max_unique_stacks=1)
    stop = threading.Event()

    # distinct function names -> distinct collapsed stacks
    def wait_a(event):
        _busy_wait(event)

    def wait_b(event):
        _busy_wait(event)

    def wait_c(event):
        _busy_wait(event)

    workers = [
        threading.Thread(target=target, args=(stop,))
        for target in (wait_a, wait_b, wait_c)
    ]
    for worker in workers:
        worker.start()
    try:
        time.sleep(0.05)  # let every worker reach its wait_X frame
        for _ in range(5):
            profiler.sample_once()
    finally:
        stop.set()
        for worker in workers:
            worker.join(5)
    snapshot = profiler.snapshot()
    assert snapshot["samples"] > 0
    # at most the cap plus the shared overflow bucket
    assert snapshot["unique_stacks"] <= 2
    assert snapshot["truncated_stacks"] > 0
    assert "<overflow>" in snapshot["collapsed"]


def test_snapshot_is_json_serializable(busy_thread):
    profiler = Profiler(hz=50)
    profiler.sample_once()
    payload = json.loads(json.dumps(profiler.snapshot()))
    assert set(payload) >= {
        "hz",
        "running",
        "duration_seconds",
        "samples",
        "unique_stacks",
        "truncated_stacks",
        "collapsed",
        "flamegraph",
        "spans",
    }


# -- span attribution ----------------------------------------------------------


def test_samples_attribute_to_the_innermost_open_span():
    """The sampler observes *other* threads, so attribution is checked
    from a worker holding a span open while this thread samples."""
    original = tracing.is_enabled()
    tracing.set_enabled(True)
    tracing.take_trace()
    in_span = threading.Event()
    release = threading.Event()

    def worker():
        with tracing.span("outer_work"):
            with tracing.span("attributed_work"):
                in_span.set()
                release.wait(5)

    thread = threading.Thread(target=worker)
    try:
        profiler = Profiler(hz=50)
        thread.start()
        assert in_span.wait(5)
        profiler.sample_once()
        profiler.sample_once()
        release.set()
        thread.join(5)
        profiler.sample_once()  # span closed: no further attribution
        spans = profiler.span_attribution()
        # innermost wins: samples land on attributed_work, not outer_work
        assert spans.get("attributed_work") == 2
        assert "outer_work" not in spans
    finally:
        release.set()
        thread.join(5)
        tracing.set_enabled(original)
        tracing.take_trace()


def test_no_attribution_when_tracing_disabled(busy_thread):
    assert not tracing.is_enabled()
    profiler = Profiler(hz=50)
    profiler.sample_once()
    assert profiler.snapshot()["samples"] > 0
    assert profiler.span_attribution() == {}


# -- burst sampling ------------------------------------------------------------


def test_burst_sample_is_bounded_and_tagged():
    payload = profiling.burst_sample(seconds=0.1, hz=100)
    assert payload["burst"] is True
    assert not payload["running"]
    assert payload["duration_seconds"] < profiling.MAX_BURST_SECONDS
    assert payload["samples"] >= 1
