"""Hierarchical span recording and the zero-cost disabled path."""

import pytest

from repro.observability import tracing


@pytest.fixture
def enabled_tracing():
    """Enable tracing for one test, restoring the flag and dropping any
    recorded tree afterwards so tests stay independent."""
    original = tracing.is_enabled()
    tracing.set_enabled(True)
    tracing.take_trace()
    yield
    tracing.set_enabled(original)
    tracing.take_trace()


def test_disabled_span_is_the_shared_null_span():
    assert not tracing.is_enabled()
    assert tracing.span("anything") is tracing.NULL_SPAN
    assert tracing.span("step[%d]", 3) is tracing.NULL_SPAN
    with tracing.span("anything") as span:
        span.set("key", "value")  # must be a silent no-op
    assert tracing.take_trace() is None


def test_span_nesting(enabled_tracing):
    with tracing.span("summarize"):
        with tracing.span("step[%d]", 1):
            with tracing.span("score_candidates") as scoring:
                scoring.set("path", "fast")
        with tracing.span("step[%d]", 2):
            pass

    root = tracing.take_trace()
    assert root is not None
    assert root.name == "summarize"
    assert [child.name for child in root.children] == ["step[1]", "step[2]"]
    scoring = root.find("score_candidates")
    assert scoring is not None
    assert scoring.attributes == {"path": "fast"}
    assert root.find("no_such_span") is None


def test_current_tracks_the_open_span(enabled_tracing):
    assert tracing.current() is None
    with tracing.span("outer") as outer:
        assert tracing.current() is outer
        with tracing.span("inner") as inner:
            assert tracing.current() is inner
        assert tracing.current() is outer
    assert tracing.current() is None


def test_durations_are_monotonic(enabled_tracing):
    with tracing.span("outer"):
        with tracing.span("inner"):
            pass
    root = tracing.take_trace()
    inner = root.children[0]
    assert root.duration >= inner.duration >= 0.0


def test_take_trace_clears_last_trace(enabled_tracing):
    with tracing.span("run"):
        pass
    assert tracing.last_trace() is not None
    assert tracing.take_trace().name == "run"
    assert tracing.last_trace() is None
    assert tracing.take_trace() is None


def test_span_constructor_attributes(enabled_tracing):
    with tracing.span("run", beam_width=4):
        pass
    assert tracing.take_trace().attributes == {"beam_width": 4}


def test_exception_marks_the_span_and_propagates(enabled_tracing):
    with pytest.raises(RuntimeError, match="boom"):
        with tracing.span("run"):
            raise RuntimeError("boom")
    root = tracing.take_trace()
    assert root.attributes["error"] is True
    assert root.attributes["error_type"] == "RuntimeError"
    assert root.attributes["error_message"] == "boom"


def test_exception_closes_the_span_and_unwinds_the_stack(enabled_tracing):
    """A raising span must still close (finite duration, stack popped)
    and re-raise the original exception, so a failed request's tail
    sample carries the error without corrupting later requests."""
    with pytest.raises(ValueError, match="inner boom"):
        with tracing.span("outer"):
            with tracing.span("inner"):
                raise ValueError("inner boom")
    root = tracing.take_trace()
    assert root.name == "outer"
    assert root.duration >= 0.0  # closed despite the raise
    (inner,) = root.children
    assert inner.attributes["error"] is True
    assert inner.attributes["error_type"] == "ValueError"
    assert inner.attributes["error_message"] == "inner boom"
    # the outer span saw the exception propagate through it too
    assert root.attributes["error"] is True
    # the per-thread stack fully unwound: new spans start a fresh tree
    assert tracing.current() is None
    with tracing.span("fresh"):
        pass
    assert tracing.take_trace().name == "fresh"


def test_active_span_name_tracks_this_thread(enabled_tracing):
    import threading

    ident = threading.get_ident()
    assert tracing.active_span_name(ident) is None
    with tracing.span("outer"):
        assert tracing.active_span_name(ident) == "outer"
        with tracing.span("inner"):
            assert tracing.active_span_name(ident) == "inner"
        assert tracing.active_span_name(ident) == "outer"
    assert tracing.active_span_name(ident) is None
    assert tracing.active_span_name(ident + 999983) is None  # unknown thread


def test_prune_active_stacks_drops_dead_threads(enabled_tracing):
    import threading

    ready = threading.Event()
    release = threading.Event()
    idents = []

    def worker():
        with tracing.span("worker_span"):
            idents.append(threading.get_ident())
            ready.set()
            release.wait(5)

    thread = threading.Thread(target=worker)
    thread.start()
    assert ready.wait(5)
    (ident,) = idents
    assert tracing.active_span_name(ident) == "worker_span"
    release.set()
    thread.join(5)
    # the dead thread's registry entry survives until a sampler prunes
    tracing.prune_active_stacks([threading.get_ident()])
    assert tracing.active_span_name(ident) is None


def test_to_dict_shape(enabled_tracing):
    with tracing.span("summarize"):
        with tracing.span("step[%d]", 1) as step:
            step.set("merged", ["U1", "U2"])

    payload = tracing.take_trace().to_dict()
    assert payload["name"] == "summarize"
    assert payload["offset_seconds"] == 0.0
    assert payload["duration_seconds"] >= 0.0
    (child,) = payload["children"]
    assert child["name"] == "step[1]"
    assert child["offset_seconds"] >= 0.0
    assert child["attributes"] == {"merged": ["U1", "U2"]}
    assert "children" not in child  # leaves omit the key
