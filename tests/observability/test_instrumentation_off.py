"""Instrumentation must not change what the pipeline computes.

The PR 1 differential harness proves serial ≡ parallel ≡ incremental;
this module proves the observability layer preserves that: the summary
a run produces is byte-identical whether tracing/metrics are on or
off, and the differential invariant still holds with tracing recording
every span.
"""

import pytest

from repro import serialization
from repro.core import SummarizationConfig, Summarizer
from repro.datasets import MovieLensConfig, generate_movielens
from repro.observability import metrics, profiling, tracing


@pytest.fixture
def instrumentation_guard():
    """Restore both switches and drop any recorded trace afterwards."""
    metrics_on = metrics.ENABLED
    tracing_on = tracing.is_enabled()
    yield
    metrics.set_enabled(metrics_on)
    tracing.set_enabled(tracing_on)
    tracing.take_trace()


def _summarize(**knobs):
    problem = generate_movielens(
        MovieLensConfig(n_users=12, n_movies=10, seed=3)
    ).problem()
    config = SummarizationConfig(w_dist=0.7, max_steps=4, seed=3, **knobs)
    return Summarizer(problem, config).run()


def _portable(result):
    return serialization.dumps(serialization.summary_to_dict(result))


def test_output_is_byte_identical_with_instrumentation_off_and_on(
    instrumentation_guard,
):
    metrics.set_enabled(False)
    tracing.set_enabled(False)
    baseline = _summarize()

    metrics.set_enabled(True)
    tracing.set_enabled(True)
    tracing.take_trace()
    instrumented = _summarize()

    assert _portable(instrumented) == _portable(baseline)
    assert [r.merged for r in instrumented.steps] == [
        r.merged for r in baseline.steps
    ]
    assert [r.scoring_path for r in instrumented.steps] == [
        r.scoring_path for r in baseline.steps
    ]


def test_output_is_byte_identical_with_the_profiler_sampling(
    instrumentation_guard,
):
    """The sampling profiler observes frames from outside and must not
    perturb the run: byte-identical output with a profiler running at
    full rate, with and without tracing (span attribution on/off)."""
    metrics.set_enabled(False)
    tracing.set_enabled(False)
    baseline = _summarize()

    with profiling.Profiler(hz=500):
        profiled = _summarize()
    assert _portable(profiled) == _portable(baseline)

    metrics.set_enabled(True)
    tracing.set_enabled(True)
    tracing.take_trace()
    with profiling.Profiler(hz=500) as profiler:
        attributed = _summarize()
    tracing.take_trace()
    assert _portable(attributed) == _portable(baseline)
    assert profiler.snapshot()["samples"] >= 0  # sampling ran without harm


def test_differential_invariant_holds_with_tracing_on(instrumentation_guard):
    """Serial ≡ incremental merge sequences, spans recording throughout."""
    tracing.set_enabled(True)
    tracing.take_trace()
    serial = _summarize(parallelism=0, incremental="off")
    incremental = _summarize(parallelism=0, incremental="on")
    assert [r.merged for r in serial.steps] == [r.merged for r in incremental.steps]
    assert _portable(serial) == _portable(incremental)


def test_trace_tree_matches_the_documented_hierarchy(instrumentation_guard):
    tracing.set_enabled(True)
    tracing.take_trace()
    result = _summarize()

    root = tracing.take_trace()
    assert root is not None and root.name == "summarize"
    steps = [child for child in root.children if child.name.startswith("step[")]
    assert [child.name for child in steps] == [
        f"step[{k}]" for k in range(1, len(steps) + 1)
    ]
    assert len(steps) >= result.n_steps
    for child in steps[: result.n_steps]:
        scoring = child.find("score_candidates")
        assert scoring is not None
        assert scoring.attributes["path"] in {"fast", "fast+incremental", "naive"}
        assert scoring.attributes["n_candidates"] >= 0
    assert root.attributes["stop_reason"] == result.stop_reason
    assert root.attributes["final_size"] == result.final_size


def test_metrics_advance_during_a_run(instrumentation_guard):
    metrics.set_enabled(True)
    steps_total = metrics.REGISTRY.get("prox_summarize_steps_total")
    scoring_seconds = metrics.REGISTRY.get("prox_scoring_seconds")
    before_steps = steps_total.value()
    before_count = scoring_seconds.count()

    result = _summarize()

    assert steps_total.value() == before_steps + result.n_steps
    assert scoring_seconds.count() >= before_count + result.n_steps


# -- cross-step candidate carry --------------------------------------------------


def test_output_is_byte_identical_with_carry_and_instrumentation(
    instrumentation_guard,
):
    """The carry counters/span attributes must not perturb a carry-on
    run: byte-identical output with instrumentation off and on, eager
    and lazy."""
    for knobs in (dict(carry="on"), dict(carry="on", lazy="on")):
        metrics.set_enabled(False)
        tracing.set_enabled(False)
        baseline = _summarize(**knobs)

        metrics.set_enabled(True)
        tracing.set_enabled(True)
        tracing.take_trace()
        instrumented = _summarize(**knobs)
        tracing.take_trace()

        assert _portable(instrumented) == _portable(baseline), knobs


def test_carry_counters_advance_during_a_run(instrumentation_guard):
    metrics.set_enabled(True)
    carried_total = metrics.REGISTRY.get("prox_scoring_candidates_carried_total")
    rescored_total = metrics.REGISTRY.get("prox_scoring_candidates_rescored_total")
    before_carried = carried_total.value()
    before_rescored = rescored_total.value()

    result = _summarize(carry="on", lazy="on")

    carried = sum(
        r.n_candidates - r.n_rescored for r in result.steps if r.n_rescored >= 0
    )
    rescored = sum(r.n_rescored for r in result.steps if r.n_rescored >= 0)
    assert carried > 0, "the carry never engaged on the sample instance"
    assert carried_total.value() == before_carried + carried
    assert rescored_total.value() >= before_rescored + rescored


def test_carry_counters_golden_scrape(instrumentation_guard):
    """The two carry families render in exposition format with their
    registered HELP text."""
    metrics.set_enabled(True)
    _summarize(carry="on")
    scrape = metrics.REGISTRY.render()
    assert (
        "# HELP prox_scoring_candidates_carried_total Candidates whose "
        "measurement was carried across a step (delta-corrected or served "
        "stale from the lazy queue).\n"
        "# TYPE prox_scoring_candidates_carried_total counter\n"
    ) in scrape
    assert (
        "# HELP prox_scoring_candidates_rescored_total Candidates freshly "
        "re-scored under cross-step carry (intersecting, new, or "
        "confirmation re-scores).\n"
        "# TYPE prox_scoring_candidates_rescored_total counter\n"
    ) in scrape
    assert "prox_scoring_candidates_carried_total " in scrape
    assert "prox_scoring_candidates_rescored_total " in scrape


# -- bit-packed sampled scoring ---------------------------------------------------


def test_output_is_byte_identical_with_sampled_kernel_and_instrumentation(
    instrumentation_guard,
):
    """The sampled-step counters/span attributes must not perturb a
    shared-batch run: byte-identical output with instrumentation off
    and on."""
    knobs = dict(max_enumerate=0, distance_samples=64)
    metrics.set_enabled(False)
    tracing.set_enabled(False)
    baseline = _summarize(**knobs)

    metrics.set_enabled(True)
    tracing.set_enabled(True)
    tracing.take_trace()
    instrumented = _summarize(**knobs)
    tracing.take_trace()

    assert {r.scoring_path for r in baseline.steps} == {"sampled+incremental"}
    assert _portable(instrumented) == _portable(baseline)


def test_sampled_counters_advance_during_a_run(instrumentation_guard):
    metrics.set_enabled(True)
    sampled_total = metrics.REGISTRY.get("prox_scoring_sampled_fast_total")
    reuse_total = metrics.REGISTRY.get("prox_scoring_sample_batch_reuse_total")
    before_sampled = sampled_total.value()
    before_reuse = reuse_total.value()

    result = _summarize(max_enumerate=0, distance_samples=64)

    assert result.n_steps > 1
    # Every step ran the sampled kernel; the carried scorer's pinned
    # batch served every step after the first.
    assert sampled_total.value() == before_sampled + result.n_steps
    assert reuse_total.value() == before_reuse + result.n_steps - 1


def test_sampled_counters_golden_scrape(instrumentation_guard):
    """The two sampled families render in exposition format with their
    registered HELP text."""
    metrics.set_enabled(True)
    _summarize(max_enumerate=0, distance_samples=64)
    scrape = metrics.REGISTRY.render()
    assert (
        "# HELP prox_scoring_sampled_fast_total Scoring steps served by "
        "the bit-packed sampled (shared Monte-Carlo batch) kernel.\n"
        "# TYPE prox_scoring_sampled_fast_total counter\n"
    ) in scrape
    assert (
        "# HELP prox_scoring_sample_batch_reuse_total Sampled steps that "
        "reused the carried scorer's valuation batch instead of "
        "redrawing it.\n"
        "# TYPE prox_scoring_sample_batch_reuse_total counter\n"
    ) in scrape
    assert "prox_scoring_sampled_fast_total " in scrape
    assert "prox_scoring_sample_batch_reuse_total " in scrape


def test_score_candidates_spans_report_batch_attributes(instrumentation_guard):
    tracing.set_enabled(True)
    tracing.take_trace()
    result = _summarize(max_enumerate=0, distance_samples=64)

    root = tracing.take_trace()
    steps = [child for child in root.children if child.name.startswith("step[")]
    assert len(steps) >= result.n_steps
    reused = []
    for child in steps[: result.n_steps]:
        scoring = child.find("score_candidates")
        assert scoring is not None
        assert scoring.attributes["path"] == "sampled+incremental"
        assert scoring.attributes["sample_batch"] == 64
        assert scoring.attributes["sample_variance"] >= 0.0
        reused.append(scoring.attributes["batch_reused"])
    assert reused[0] is False
    assert all(reused[1:]), "carried steps must reuse the pinned batch"

    # Enumerated steps keep their span shape: no sample attributes.
    tracing.take_trace()
    _summarize()
    root = tracing.take_trace()
    steps = [child for child in root.children if child.name.startswith("step[")]
    assert steps
    for child in steps:
        scoring = child.find("score_candidates")
        assert "sample_batch" not in scoring.attributes
        assert "batch_reused" not in scoring.attributes


def test_score_candidates_spans_report_carry_partition(instrumentation_guard):
    tracing.set_enabled(True)
    tracing.take_trace()
    result = _summarize(carry="on", lazy="on")

    root = tracing.take_trace()
    steps = [child for child in root.children if child.name.startswith("step[")]
    assert len(steps) >= result.n_steps
    partitions = []
    for child in steps[: result.n_steps]:
        scoring = child.find("score_candidates")
        assert scoring is not None
        carried = scoring.attributes["carried"]
        rescored = scoring.attributes["rescored"]
        assert carried >= 0 and rescored >= 0
        partitions.append((carried, rescored))
    for (carried, rescored), record in zip(partitions, result.steps):
        assert carried + rescored == record.n_candidates
        assert rescored == record.n_rescored
    assert any(carried > 0 for carried, _ in partitions[1:])


# -- kernel backends ---------------------------------------------------------------


def test_kernel_backend_golden_scrape(instrumentation_guard):
    """The kernel info gauge renders in exposition format with one
    sample per backend, 1 marking the active one."""
    from repro.core import kernels

    metrics.set_enabled(True)
    kernels.publish_backend_metric()
    scrape = metrics.REGISTRY.render()
    assert (
        "# HELP repro_kernel_backend Active scoring kernel backend "
        "(info-style: 1 for the active backend).\n"
        "# TYPE repro_kernel_backend gauge\n"
    ) in scrape
    active = kernels.active_backend()
    other = "python" if active == "numpy" else "numpy"
    assert f'repro_kernel_backend{{backend="{active}"}} 1' in scrape
    assert f'repro_kernel_backend{{backend="{other}"}} 0' in scrape


def test_score_candidates_spans_report_the_kernel(instrumentation_guard):
    from repro.core import kernels

    tracing.set_enabled(True)
    tracing.take_trace()
    result = _summarize()

    root = tracing.take_trace()
    steps = [child for child in root.children if child.name.startswith("step[")]
    assert len(steps) >= result.n_steps
    for child in steps[: result.n_steps]:
        scoring = child.find("score_candidates")
        assert scoring is not None
        assert scoring.attributes["kernel"] == kernels.active_backend()


def test_output_is_byte_identical_across_kernel_backends(
    instrumentation_guard,
):
    """The kernel tier is an execution-strategy change only: with
    instrumentation off OR on, the numpy backend's output is
    byte-identical to the reference backend's, on the enumerated and
    the sampled path."""
    from repro.core import kernels

    if not kernels.numpy_available():
        pytest.skip("numpy backend unavailable")

    for knobs in ({}, dict(max_enumerate=0, distance_samples=64)):
        metrics.set_enabled(False)
        tracing.set_enabled(False)
        with kernels.backend(kernels.MODE_PYTHON):
            baseline = _summarize(**knobs)
        metrics.set_enabled(True)
        tracing.set_enabled(True)
        tracing.take_trace()
        with kernels.backend(kernels.MODE_NUMPY):
            instrumented = _summarize(**knobs)
        tracing.take_trace()
        assert _portable(instrumented) == _portable(baseline), knobs


# -- streaming ingest & summary repair ---------------------------------------------


def _streaming_session():
    from repro.datasets.movielens import (
        MovieLensDeltaConfig,
        generate_movielens_deltas,
    )
    from repro.prox import ProxSession, SummarizationRequest

    instance = generate_movielens(
        MovieLensConfig(n_users=14, n_movies=10, seed=3)
    )
    deltas = generate_movielens_deltas(
        instance, MovieLensDeltaConfig(n_deltas=3, spam_flag_every=2, seed=5)
    )
    session = ProxSession(instance)
    session.select_titles(session.titles())
    return session, deltas, SummarizationRequest(number_of_steps=4)


def _drive_stream():
    session, deltas, request = _streaming_session()
    session.summarize(request)
    results = []
    for delta in deltas:
        session.ingest(delta)
        results.append(session.summarize(request))
    return results


def test_streaming_repair_is_byte_identical_with_instrumentation_off_and_on(
    instrumentation_guard,
):
    """The ingest/repair counters and span attributes must not perturb
    the streamed loop: every repaired summary byte-identical with
    instrumentation off and on."""
    metrics.set_enabled(False)
    tracing.set_enabled(False)
    baseline = _drive_stream()

    metrics.set_enabled(True)
    tracing.set_enabled(True)
    tracing.take_trace()
    instrumented = _drive_stream()
    tracing.take_trace()

    assert [_portable(r) for r in instrumented] == [
        _portable(r) for r in baseline
    ]


def test_ingest_and_repair_counters_advance_during_a_stream(
    instrumentation_guard,
):
    metrics.set_enabled(True)
    ingested_total = metrics.REGISTRY.get("prox_ingest_deltas_total")
    invalidated_total = metrics.REGISTRY.get("prox_repair_invalidated_total")
    before_ingested = ingested_total.value()
    before_invalidated = invalidated_total.value()

    results = _drive_stream()

    assert ingested_total.value() == before_ingested + len(results)
    invalidated = sum(r.repair_invalidated for r in results)
    assert invalidated > 0, "the spam-flag delta never invalidated pool entries"
    assert invalidated_total.value() == before_invalidated + invalidated
    assert any(r.repair_seeded > 0 for r in results), "repair never seeded"


def test_ingest_and_repair_counters_golden_scrape(instrumentation_guard):
    """The two streaming families render in exposition format with
    their registered HELP text."""
    metrics.set_enabled(True)
    _drive_stream()
    scrape = metrics.REGISTRY.render()
    assert (
        "# HELP prox_ingest_deltas_total Streaming provenance deltas "
        "ingested into PROX sessions.\n"
        "# TYPE prox_ingest_deltas_total counter\n"
    ) in scrape
    assert (
        "# HELP prox_repair_invalidated_total Carried candidate-pool "
        "entries invalidated by streaming-repair runs (dropped or "
        "re-proposed because a delta touched them).\n"
        "# TYPE prox_repair_invalidated_total counter\n"
    ) in scrape
    assert "prox_ingest_deltas_total " in scrape
    assert "prox_repair_invalidated_total " in scrape


def test_ingest_spans_record_delta_shape(instrumentation_guard):
    tracing.set_enabled(True)
    tracing.take_trace()
    session, deltas, request = _streaming_session()
    session.summarize(request)
    tracing.take_trace()
    session.ingest(deltas[0])
    span = tracing.take_trace()
    assert span is not None and span.name == "ingest"
    assert span.attributes["annotations"] == len(deltas[0].annotations)
    assert span.attributes["terms"] == len(deltas[0].terms)
    assert span.attributes["extended_valuations"] == len(
        deltas[0].extend_valuations
    )
    assert span.attributes["selected_size"] == session.selected.size()
