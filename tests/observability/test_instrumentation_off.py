"""Instrumentation must not change what the pipeline computes.

The PR 1 differential harness proves serial ≡ parallel ≡ incremental;
this module proves the observability layer preserves that: the summary
a run produces is byte-identical whether tracing/metrics are on or
off, and the differential invariant still holds with tracing recording
every span.
"""

import pytest

from repro import serialization
from repro.core import SummarizationConfig, Summarizer
from repro.datasets import MovieLensConfig, generate_movielens
from repro.observability import metrics, tracing


@pytest.fixture
def instrumentation_guard():
    """Restore both switches and drop any recorded trace afterwards."""
    metrics_on = metrics.ENABLED
    tracing_on = tracing.is_enabled()
    yield
    metrics.set_enabled(metrics_on)
    tracing.set_enabled(tracing_on)
    tracing.take_trace()


def _summarize(**knobs):
    problem = generate_movielens(
        MovieLensConfig(n_users=12, n_movies=10, seed=3)
    ).problem()
    config = SummarizationConfig(w_dist=0.7, max_steps=4, seed=3, **knobs)
    return Summarizer(problem, config).run()


def _portable(result):
    return serialization.dumps(serialization.summary_to_dict(result))


def test_output_is_byte_identical_with_instrumentation_off_and_on(
    instrumentation_guard,
):
    metrics.set_enabled(False)
    tracing.set_enabled(False)
    baseline = _summarize()

    metrics.set_enabled(True)
    tracing.set_enabled(True)
    tracing.take_trace()
    instrumented = _summarize()

    assert _portable(instrumented) == _portable(baseline)
    assert [r.merged for r in instrumented.steps] == [
        r.merged for r in baseline.steps
    ]
    assert [r.scoring_path for r in instrumented.steps] == [
        r.scoring_path for r in baseline.steps
    ]


def test_differential_invariant_holds_with_tracing_on(instrumentation_guard):
    """Serial ≡ incremental merge sequences, spans recording throughout."""
    tracing.set_enabled(True)
    tracing.take_trace()
    serial = _summarize(parallelism=0, incremental="off")
    incremental = _summarize(parallelism=0, incremental="on")
    assert [r.merged for r in serial.steps] == [r.merged for r in incremental.steps]
    assert _portable(serial) == _portable(incremental)


def test_trace_tree_matches_the_documented_hierarchy(instrumentation_guard):
    tracing.set_enabled(True)
    tracing.take_trace()
    result = _summarize()

    root = tracing.take_trace()
    assert root is not None and root.name == "summarize"
    steps = [child for child in root.children if child.name.startswith("step[")]
    assert [child.name for child in steps] == [
        f"step[{k}]" for k in range(1, len(steps) + 1)
    ]
    assert len(steps) >= result.n_steps
    for child in steps[: result.n_steps]:
        scoring = child.find("score_candidates")
        assert scoring is not None
        assert scoring.attributes["path"] in {"fast", "fast+incremental", "naive"}
        assert scoring.attributes["n_candidates"] >= 0
    assert root.attributes["stop_reason"] == result.stop_reason
    assert root.attributes["final_size"] == result.final_size


def test_metrics_advance_during_a_run(instrumentation_guard):
    metrics.set_enabled(True)
    steps_total = metrics.REGISTRY.get("prox_summarize_steps_total")
    scoring_seconds = metrics.REGISTRY.get("prox_scoring_seconds")
    before_steps = steps_total.value()
    before_count = scoring_seconds.count()

    result = _summarize()

    assert steps_total.value() == before_steps + result.n_steps
    assert scoring_seconds.count() >= before_count + result.n_steps
