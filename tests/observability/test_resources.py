"""Per-session resource accounting, gauges and the eviction advisor."""

import gc

import pytest

from repro.observability import metrics, resources
from repro.observability.resources import ResourceRegistry, SessionAccount


@pytest.fixture
def registry():
    return ResourceRegistry()


# -- registry lifecycle --------------------------------------------------------


def test_register_assigns_sequential_ids(registry):
    first = registry.register()
    second = registry.register()
    assert [first.session_id, second.session_id] == ["s1", "s2"]
    assert registry.ids() == ["s1", "s2"]
    assert registry.count() == 2


def test_register_rejects_duplicate_ids(registry):
    registry.register("alpha")
    with pytest.raises(ValueError, match="already registered"):
        registry.register("alpha")


def test_unregister_is_idempotent(registry):
    account = registry.register()
    registry.unregister(account.session_id)
    registry.unregister(account.session_id)  # no-op
    assert registry.count() == 0
    assert registry.get(account.session_id) is None


def test_unregister_drops_the_gauge_series(registry):
    if not metrics.ENABLED:
        pytest.skip("metrics disabled via REPRO_METRICS")
    account = registry.register("doomed")
    account.record_summarize(
        seconds=0.5,
        arena_growth=1024,
        interned_annotations=10,
        pool_candidates=5,
        summary_size=3,
    )
    gauge = metrics.REGISTRY.get("prox_session_arena_bytes")
    assert gauge.value(session="doomed") == 1024
    registry.unregister("doomed")
    scrape = metrics.REGISTRY.render()
    assert 'session="doomed"' not in scrape


def test_session_unregisters_on_garbage_collection():
    """ProxSession's weakref.finalize drops its account when collected."""
    from repro.datasets import MovieLensConfig, generate_movielens
    from repro.prox import ProxSession

    instance = generate_movielens(MovieLensConfig(n_users=6, n_movies=4, seed=1))
    session = ProxSession(instance)
    session_id = session.session_id
    assert resources.REGISTRY.get(session_id) is not None
    del session
    gc.collect()
    assert resources.REGISTRY.get(session_id) is None


def test_session_close_is_explicit_and_idempotent():
    from repro.datasets import MovieLensConfig, generate_movielens
    from repro.prox import ProxSession

    instance = generate_movielens(MovieLensConfig(n_users=6, n_movies=4, seed=1))
    session = ProxSession(instance)
    session_id = session.session_id
    session.close()
    session.close()
    assert resources.REGISTRY.get(session_id) is None


# -- accounting hooks ----------------------------------------------------------


def test_record_summarize_accumulates(registry):
    account = registry.register()
    account.record_summarize(
        seconds=1.5,
        arena_growth=100,
        interned_annotations=7,
        pool_candidates=3,
        summary_size=9,
        repaired=True,
        repair_seeded=20,
        repair_invalidated=2,
    )
    account.record_summarize(
        seconds=0.5,
        arena_growth=50,
        interned_annotations=8,
        pool_candidates=4,
        summary_size=8,
    )
    assert account.summarize_runs == 2
    assert account.summarize_seconds == pytest.approx(2.0)
    assert account.repaired_runs == 1
    assert account.repair_seeded == 20
    assert account.repair_invalidated == 2
    assert account.arena_bytes == 150
    # cardinalities are levels, not totals
    assert account.interned_annotations == 8
    assert account.pool_candidates == 4
    assert account.summary_size == 8


def test_negative_arena_growth_is_clamped(registry):
    """A shrinking global arena (another session freed) must not be
    booked as negative retention for this session."""
    account = registry.register()
    account.record_ingest(arena_growth=-500, selected_size=10)
    assert account.arena_bytes == 0
    assert account.ingested_deltas == 1
    assert account.selected_size == 10


def test_retained_bytes_and_eviction_score():
    account = SessionAccount(session_id="x")
    account.arena_bytes = 1000
    account.interned_annotations = 10
    account.pool_candidates = 5
    expected = 1000 + 10 * resources._INTERNED_COST + 5 * resources._POOL_ENTRY_COST
    assert account.retained_bytes() == expected
    # fresh account: idleness factor ~1
    assert account.eviction_score() == pytest.approx(expected, rel=0.01)
    # idle half-life doubles the score
    account.last_active -= resources.IDLE_HALF_LIFE_SECONDS
    assert account.eviction_score() == pytest.approx(2 * expected, rel=0.01)


def test_to_dict_is_json_shaped(registry):
    import json

    account = registry.register()
    payload = json.loads(json.dumps(account.to_dict()))
    assert payload["session_id"] == account.session_id
    assert payload["retained_bytes"] == 0
    assert payload["eviction_score"] == 0.0


# -- aggregates and the advisor ------------------------------------------------


def test_total_arena_bytes_sums_sessions(registry):
    first = registry.register()
    second = registry.register()
    first.record_ingest(arena_growth=300, selected_size=1)
    second.record_ingest(arena_growth=200, selected_size=1)
    assert registry.total_arena_bytes() == 500


def test_eviction_ranking_orders_heaviest_idle_first(registry):
    light = registry.register("light")
    heavy = registry.register("heavy")
    idle_heavy = registry.register("idle_heavy")
    light.record_ingest(arena_growth=10, selected_size=1)
    heavy.record_ingest(arena_growth=10_000, selected_size=1)
    idle_heavy.record_ingest(arena_growth=10_000, selected_size=1)
    idle_heavy.last_active -= 2 * resources.IDLE_HALF_LIFE_SECONDS

    ranking = registry.eviction_ranking()
    assert [row["session_id"] for row in ranking] == [
        "idle_heavy",
        "heavy",
        "light",
    ]
    assert any("idle" in reason for reason in ranking[0]["reasons"])
    assert any("retains" in reason for reason in ranking[1]["reasons"])


def test_eviction_ranking_reports_negligible_footprint(registry):
    registry.register("empty")
    (row,) = registry.eviction_ranking()
    assert row["reasons"] == ["negligible footprint"]
    assert row["eviction_score"] == 0.0


def test_snapshot_is_sorted_by_session_id(registry):
    registry.register("s9")
    registry.register("s1")
    snapshot = registry.snapshot()
    assert [row["session_id"] for row in snapshot] == ["s1", "s9"]


# -- ProxSession integration ---------------------------------------------------


def test_session_accounting_tracks_a_real_workflow():
    from repro.datasets import MovieLensConfig, generate_movielens
    from repro.datasets.movielens import (
        MovieLensDeltaConfig,
        generate_movielens_deltas,
    )
    from repro.prox import ProxSession, SummarizationRequest

    instance = generate_movielens(MovieLensConfig(n_users=10, n_movies=8, seed=3))
    deltas = generate_movielens_deltas(
        instance, MovieLensDeltaConfig(n_deltas=2, seed=5)
    )
    session = ProxSession(instance)
    try:
        account = session.account
        session.select_titles(session.titles())
        assert account.selected_size == session.selected.size()

        result = session.summarize(SummarizationRequest(number_of_steps=2))
        assert account.summarize_runs == 1
        assert account.summarize_seconds >= result.total_seconds
        assert account.summary_size == result.final_size

        session.ingest(deltas[0])
        assert account.ingested_deltas == 1
        assert account.selected_size == session.selected.size()

        session.summarize(SummarizationRequest(number_of_steps=2))
        assert account.summarize_runs == 2
        assert account.retained_bytes() >= 0
        assert resources.REGISTRY.get(session.session_id) is account
    finally:
        session.close()
