"""SLO policy, breach counting and the tail-sampled slow-request ring."""

import pytest

from repro.observability import metrics, slo
from repro.observability.slo import SloPolicy, SlowRequestLog


# -- policy --------------------------------------------------------------------


def test_default_policy_covers_the_served_routes():
    policy = SloPolicy()
    assert policy.target("/summarize") == 2.0
    assert policy.target("/healthz") == 0.1
    assert policy.target("/made/up/route") == policy.default_seconds


def test_policy_validation():
    with pytest.raises(ValueError, match="default_seconds"):
        SloPolicy(default_seconds=0)
    with pytest.raises(ValueError, match="must be positive"):
        SloPolicy(targets={"/x": -1.0})
    with pytest.raises(ValueError, match="ring_size"):
        SloPolicy(ring_size=0)


def test_describe_is_json_shaped():
    import json

    payload = json.loads(json.dumps(SloPolicy().describe()))
    assert payload["default_seconds"] == 1.0
    assert payload["ring_size"] == 64
    assert payload["targets_seconds"]["/summarize"] == 2.0


# -- breach counter ------------------------------------------------------------


def test_record_breach_increments_the_scoped_counter():
    if not metrics.ENABLED:
        pytest.skip("metrics disabled via REPRO_METRICS")
    before = slo.SLO_BREACHES.value(scope="test_scope")
    slo.record_breach("test_scope")
    slo.record_breach("test_scope")
    assert slo.SLO_BREACHES.value(scope="test_scope") == before + 2


def test_record_breach_respects_the_metrics_switch():
    original = metrics.ENABLED
    try:
        metrics.set_enabled(False)
        before = slo.SLO_BREACHES.value(scope="switched_off")
        slo.record_breach("switched_off")
        assert slo.SLO_BREACHES.value(scope="switched_off") == before
    finally:
        metrics.set_enabled(original)


def test_summarize_run_breach_via_config():
    """slo_seconds on the config counts a summarize_run breach when the
    run overshoots (any real run overshoots a 1ns budget)."""
    if not metrics.ENABLED:
        pytest.skip("metrics disabled via REPRO_METRICS")
    from repro.core import SummarizationConfig, Summarizer
    from repro.datasets import MovieLensConfig, generate_movielens

    problem = generate_movielens(
        MovieLensConfig(n_users=8, n_movies=6, seed=3)
    ).problem()
    before = slo.SLO_BREACHES.value(scope="summarize_run")
    config = SummarizationConfig(max_steps=1, seed=3, slo_seconds=1e-9)
    Summarizer(problem, config).run()
    assert slo.SLO_BREACHES.value(scope="summarize_run") == before + 1

    # a generous budget records nothing
    config = SummarizationConfig(max_steps=1, seed=3, slo_seconds=3600.0)
    Summarizer(problem, config).run()
    assert slo.SLO_BREACHES.value(scope="summarize_run") == before + 1


def test_slo_seconds_config_validation():
    from repro.core import SummarizationConfig

    with pytest.raises(ValueError, match="slo_seconds"):
        SummarizationConfig(slo_seconds=0)
    with pytest.raises(ValueError, match="slo_seconds"):
        SummarizationConfig(slo_seconds=-1.5)
    assert SummarizationConfig(slo_seconds="2.5").slo_seconds == 2.5
    assert SummarizationConfig().slo_seconds is None


# -- slow-request ring ---------------------------------------------------------


def test_ring_is_bounded_but_total_keeps_counting():
    log = SlowRequestLog(ring_size=3)
    for index in range(10):
        log.record(
            method="GET",
            path=f"/r{index}",
            status=200,
            seconds=1.5,
            target_seconds=1.0,
        )
    entries = log.snapshot()
    assert len(entries) == 3
    assert [entry["path"] for entry in entries] == ["/r7", "/r8", "/r9"]
    assert log.total_recorded == 10


def test_record_retains_trace_only_when_given():
    log = SlowRequestLog(ring_size=4)
    log.record(
        method="POST",
        path="/summarize",
        status=200,
        seconds=2.5,
        target_seconds=2.0,
    )
    log.record(
        method="POST",
        path="/summarize",
        status=200,
        seconds=3.0,
        target_seconds=2.0,
        trace={"name": "http[POST /summarize]", "children": []},
    )
    plain, traced = log.snapshot()
    assert "trace" not in plain
    assert traced["trace"]["name"] == "http[POST /summarize]"
    assert traced["seconds"] == 3.0
    assert plain["recorded_at"] > 0


def test_clear_empties_the_ring_not_the_total():
    log = SlowRequestLog(ring_size=4)
    log.record(method="GET", path="/x", status=200, seconds=2, target_seconds=1)
    log.clear()
    assert log.snapshot() == []
    assert log.total_recorded == 1
