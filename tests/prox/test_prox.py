"""PROX services: selection, summarization, provisioning, session."""

import pytest

from repro.datasets import MovieLensConfig, generate_movielens
from repro.prox import (
    EvaluatorService,
    ProxSession,
    SelectionService,
    SummarizationRequest,
    SummarizationService,
)


@pytest.fixture
def instance():
    return generate_movielens(
        MovieLensConfig(n_users=12, n_movies=8, include_movie_merges=True, seed=7)
    )


class TestSelection:
    def test_title_listing_and_search(self, instance):
        service = SelectionService(instance)
        titles = service.available_titles()
        assert len(titles) == 8
        matches = service.search_titles(titles[0][:4].lower())
        assert titles[0] in matches

    def test_by_titles(self, instance):
        service = SelectionService(instance)
        titles = service.available_titles()[:2]
        selected = service.by_titles(titles)
        assert set(selected.groups()) == set(titles)
        assert selected.size() < instance.expression.size()
        with pytest.raises(KeyError, match="unknown titles"):
            service.by_titles(["Nonexistent Movie"])

    def test_by_attributes(self, instance):
        service = SelectionService(instance)
        universe = instance.universe
        genre = universe.in_domain("movie")[0].attributes["genre"]
        selected = service.by_attributes(genre=genre)
        for group in selected.groups():
            assert universe[group].attributes["genre"] == genre
        with pytest.raises(LookupError, match="no movies match"):
            service.by_attributes(genre="nonexistent-genre")


class TestSummarizationService:
    def test_ui_parameters_applied(self, instance):
        service = SummarizationService(instance)
        selected = SelectionService(instance).by_titles(
            SelectionService(instance).available_titles()[:4]
        )
        request = SummarizationRequest(
            distance_weight=1.0,
            number_of_steps=3,
            aggregation="SUM",
            valuation_class="Cancel Single Attribute",
        )
        result = service.summarize(selected, request)
        assert result.summary_expression.monoid.name == "SUM"
        assert result.n_steps <= 3

    def test_unknown_options_rejected(self, instance):
        service = SummarizationService(instance)
        selected = SelectionService(instance).by_titles(
            SelectionService(instance).available_titles()[:2]
        )
        with pytest.raises(ValueError, match="unknown valuation class"):
            service.summarize(
                selected, SummarizationRequest(valuation_class="Cancel Everything")
            )
        with pytest.raises(ValueError, match="unknown VAL-FUNC"):
            service.summarize(
                selected, SummarizationRequest(val_func="Hamming")
            )


class TestEvaluator:
    def test_original_provisioning(self, instance):
        evaluator = EvaluatorService(instance)
        outcome = evaluator.evaluate_original(instance.expression)
        assert outcome.evaluation_time_ns > 0
        assert all(0 <= rating <= 5 for _, rating in outcome.rows())

    def test_false_attributes_cancel_groups(self, instance):
        evaluator = EvaluatorService(instance)
        full = evaluator.evaluate_original(instance.expression)
        without_males = evaluator.evaluate_original(
            instance.expression, false_attributes={"gender": "M"}
        )
        assert any(
            without_males.ratings[title] <= full.ratings[title]
            for title in full.ratings
        )


class TestSession:
    def test_full_loop(self, instance):
        session = ProxSession(instance)
        titles = session.titles()[:4]
        size = session.select_titles(titles)
        assert size > 0
        result = session.summarize(
            SummarizationRequest(distance_weight=0.5, number_of_steps=4)
        )
        assert result.final_size <= size
        view = session.expression_view()
        assert f"Provenance Size: {result.final_size}" in view
        groups = session.groups_view()
        for group in groups:
            assert group.size == len(group.members) >= 2
        original, summary = session.evaluate(false_annotations=[titles[0]])
        assert original.evaluation_time_ns > 0
        assert summary.evaluation_time_ns > 0

    def test_view_ordering_enforced(self, instance):
        session = ProxSession(instance)
        with pytest.raises(RuntimeError, match="select provenance first"):
            session.summarize()
        session.select_titles(session.titles()[:2])
        with pytest.raises(RuntimeError, match="summarize first"):
            session.expression_view()

    def test_default_instance(self):
        session = ProxSession(seed=3)
        assert session.titles()


class TestExplain:
    def test_explain_selected_title(self, instance):
        session = ProxSession(instance)
        titles = session.titles()[:3]
        session.select_titles(titles)
        text = session.explain(titles[0])
        assert titles[0] in text
        assert "MAX" in text

    def test_explain_requires_selection_and_membership(self, instance):
        session = ProxSession(instance)
        with pytest.raises(RuntimeError, match="select provenance first"):
            session.explain("anything")
        titles = session.titles()
        session.select_titles(titles[:2])
        with pytest.raises(KeyError, match="not in the current selection"):
            session.explain(titles[-1])


class TestIngest:
    def _delta(self, instance, n=1):
        from repro.datasets.movielens import (
            MovieLensDeltaConfig,
            generate_movielens_deltas,
        )

        return generate_movielens_deltas(
            instance, MovieLensDeltaConfig(n_deltas=n, seed=4)
        )

    def test_ingest_requires_selection(self, instance):
        from repro.core.streaming import ProvenanceDelta

        session = ProxSession(instance)
        with pytest.raises(RuntimeError, match="select provenance first"):
            session.ingest(ProvenanceDelta())

    def test_ingest_grows_selection_and_counts(self, instance):
        session = ProxSession(instance)
        session.select_titles(session.titles())
        size_before = session.selected.size()
        (delta,) = self._delta(instance)
        stats = session.ingest(delta)
        assert stats["ingested_deltas"] == 1
        assert stats["terms"] == len(delta.terms)
        assert stats["selected_size"] == session.selected.size() > size_before
        # The stale summary is dropped: a repaired one replaces it.
        assert session.result is None

    def test_ingest_rejects_unknown_term_annotation(self, instance):
        from repro.core.streaming import ProvenanceDelta
        from repro.provenance import Term

        session = ProxSession(instance)
        session.select_titles(session.titles())
        bad = ProvenanceDelta(terms=(Term(("no-such-annotation",), 1.0),))
        with pytest.raises(KeyError, match="unknown annotation"):
            session.ingest(bad)

    def test_ingest_rejects_unknown_extension_target(self, instance):
        from repro.core.streaming import ProvenanceDelta

        session = ProxSession(instance)
        session.select_titles(session.titles())
        bad = ProvenanceDelta(
            extend_valuations={"cancel UID100": ("no-such-annotation",)}
        )
        with pytest.raises(KeyError, match="unknown annotation"):
            session.ingest(bad)

    def test_ingest_then_repair_summarize(self, instance):
        session = ProxSession(instance)
        session.select_titles(session.titles())
        request = SummarizationRequest(number_of_steps=3)
        session.summarize(request)
        for delta in self._delta(instance, n=2):
            session.ingest(delta)
        result = session.summarize(request)
        assert result is session.result
        assert session.ingested_deltas == 2
