"""Hammer the PROX server from many threads.

The server is a ``ThreadingHTTPServer`` over a single mutable
:class:`ProxSession`; every handler must serialize on the session lock
so concurrent requests can interleave freely without corrupting state.
Errors must stay conventional: 409 for out-of-order workflow calls,
400 for bad input -- never a 500 or a torn response.
"""

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets import MovieLensConfig, generate_movielens
from repro.prox import ProxSession
from repro.prox.server import ProxServer

N_THREADS = 8
ROUNDS = 3


@pytest.fixture()
def server():
    instance = generate_movielens(
        MovieLensConfig(n_users=10, n_movies=6, include_movie_merges=True, seed=7)
    )
    with ProxServer(ProxSession(instance)) as running:
        yield running


def request(server, method, path, body=None):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=30)
    payload = json.dumps(body) if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    data = json.loads(response.read())
    connection.close()
    return response.status, data


SUMMARIZE_BODY = {"distance_weight": 0.7, "number_of_steps": 3}


def hammer(server, titles, barrier, worker):
    """One worker's request mix; returns (op, status, data) triples."""
    out = []
    barrier.wait(timeout=30)
    for round_index in range(ROUNDS):
        op = (worker + round_index) % 4
        if op == 0:
            out.append(
                ("select", *request(server, "POST", "/select", {"titles": titles}))
            )
        elif op == 1:
            out.append(
                ("summarize", *request(server, "POST", "/summarize", SUMMARIZE_BODY))
            )
        elif op == 2:
            out.append(
                (
                    "evaluate",
                    *request(
                        server,
                        "POST",
                        "/evaluate",
                        {"false_attributes": {"gender": "M"}},
                    ),
                )
            )
        else:
            out.append(("groups", *request(server, "GET", "/summary/groups")))
    return out


def test_concurrent_mixed_requests_keep_state_consistent(server):
    _, data = request(server, "GET", "/titles")
    titles = data["titles"][:4]
    # Fixed selection: every /select re-selects the same provenance, so
    # every successful /summarize must report the same result.
    status, _ = request(server, "POST", "/select", {"titles": titles})
    assert status == 200

    barrier = threading.Barrier(N_THREADS)
    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        futures = [
            pool.submit(hammer, server, titles, barrier, worker)
            for worker in range(N_THREADS)
        ]
        results = [entry for future in futures for entry in future.result()]

    assert len(results) == N_THREADS * ROUNDS
    summaries = []
    for op, status, data in results:
        assert status in (200, 409), (op, status, data)
        if status == 409:
            # Workflow-order conflict: a /select reset the session
            # between another thread's request pair.
            assert "error" in data, (op, data)
            assert op in ("evaluate", "groups"), (op, data)
            continue
        if op == "select":
            assert data["selected_size"] > 0
        elif op == "summarize":
            assert 0.0 <= data["distance"] <= 1.0
            assert data["steps"] <= SUMMARIZE_BODY["number_of_steps"]
            summaries.append(
                (data["size"], data["distance"], data["steps"], data["stop_reason"])
            )
        elif op == "evaluate":
            assert data["original"]["evaluation_time_ns"] > 0
            assert data["summary"]["evaluation_time_ns"] > 0
        elif op == "groups":
            for group in data["groups"]:
                assert group["size"] == len(group["members"])

    # Interleaving must not perturb the (deterministic) algorithm: all
    # successful summarize calls saw the identical selection and must
    # agree exactly.
    assert summaries, "at least one summarize must have succeeded"
    assert len(set(summaries)) == 1, summaries

    # The session still works normally after the storm.
    status, data = request(server, "POST", "/summarize", SUMMARIZE_BODY)
    assert status == 200
    assert (data["size"], data["distance"], data["steps"], data["stop_reason"]) in set(
        summaries
    )
    status, data = request(
        server, "POST", "/evaluate", {"false_attributes": {"gender": "M"}}
    )
    assert status == 200


def test_concurrent_summarize_identical_results(server):
    """Pure write contention: N simultaneous summarize calls on one
    selection all succeed and agree bit-for-bit."""
    _, data = request(server, "GET", "/titles")
    status, _ = request(server, "POST", "/select", {"titles": data["titles"][:4]})
    assert status == 200

    barrier = threading.Barrier(N_THREADS)

    def one(_):
        barrier.wait(timeout=30)
        return request(server, "POST", "/summarize", SUMMARIZE_BODY)

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        responses = list(pool.map(one, range(N_THREADS)))
    assert all(status == 200 for status, _ in responses)
    payloads = {
        (data["size"], data["distance"], data["steps"], data["stop_reason"])
        for _, data in responses
    }
    assert len(payloads) == 1, payloads


def test_evaluate_before_summarize_conflicts_under_load():
    """Unsatisfiable requests fail with 409 even when racing a writer."""
    instance = generate_movielens(MovieLensConfig(n_users=8, n_movies=5, seed=1))
    with ProxServer(ProxSession(instance)) as fresh:
        barrier = threading.Barrier(4)

        def evaluate(_):
            barrier.wait(timeout=30)
            return request(fresh, "POST", "/evaluate", {"false_annotations": []})

        with ThreadPoolExecutor(max_workers=4) as pool:
            responses = list(pool.map(evaluate, range(4)))
        for status, data in responses:
            assert status == 409
            assert "summarize first" in data["error"]
