"""The sharded worker tier: hash ring, forwarding, drain.

Two forked workers behind a WorkerFront + ProxServer: sessions land on
their hash owner, lifecycle and data routes round-trip through the
queue, aggregated observability endpoints answer at the front, and
graceful drain snapshots live sessions before the workers exit.
"""

import http.client
import json

import pytest

from repro.prox.server import ProxServer
from repro.prox.workers import HashRing, WorkerFront


def request(server, method, path, body=None):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=120)
    payload = json.dumps(body) if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    raw = response.read()
    headers_out = dict(response.getheaders())
    connection.close()
    try:
        return response.status, json.loads(raw), headers_out
    except json.JSONDecodeError:
        return response.status, raw.decode(), headers_out


class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing(3)
        again = HashRing(3)
        owners = {ring.owner(f"session-{i}") for i in range(200)}
        assert owners == {0, 1, 2}
        for i in range(50):
            assert ring.owner(f"session-{i}") == again.owner(f"session-{i}")

    def test_stability_under_growth(self):
        # Consistent hashing: adding a worker moves only a fraction of
        # the keys (vs. rehash-everything for modulo sharding).
        small, large = HashRing(3), HashRing(4)
        keys = [f"session-{i}" for i in range(400)]
        moved = sum(1 for key in keys if small.owner(key) != large.owner(key))
        assert moved < len(keys) * 0.6

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            HashRing(0)


@pytest.fixture(scope="module")
def sharded_server():
    front = WorkerFront(n_workers=2, max_sessions=8, queue_depth=8)
    front.start()
    server = ProxServer(backend=front)
    server.start()
    yield server
    try:
        server.stop()
    finally:
        front.stop()


class TestShardedServing:
    def test_health_reports_live_workers(self, sharded_server):
        status, data, _ = request(sharded_server, "GET", "/healthz")
        assert status == 200
        assert data["mode"] == "sharded"
        assert [worker["alive"] for worker in data["workers"]] == [True, True]

    def test_full_session_lifecycle_through_the_front(self, sharded_server):
        status, created, _ = request(
            sharded_server, "POST", "/sessions", {"seed": 3}
        )
        assert status == 201
        session_id = created["session_id"]

        status, data, _ = request(
            sharded_server, "POST", f"/sessions/{session_id}/select",
            {"genre": None},
        )
        assert status == 200 and data["selected_size"] > 0

        status, data, _ = request(
            sharded_server, "POST", f"/sessions/{session_id}/summarize",
            {"number_of_steps": 2},
        )
        assert status == 200
        summary_size = data["size"]

        # Evict on the owning worker, restore transparently, re-read.
        status, data, _ = request(
            sharded_server, "POST", f"/sessions/{session_id}/evict"
        )
        assert status == 200
        status, data, _ = request(
            sharded_server, "GET", f"/sessions/{session_id}/summary/expression"
        )
        assert status == 200
        assert f"Provenance Size: {summary_size}" in data["expression"]

        status, listing, _ = request(sharded_server, "GET", "/sessions")
        assert status == 200
        assert session_id in {
            row["session_id"] for row in listing["sessions"]
        }
        assert len(listing["workers"]) == 2

        status, metrics, _ = request(sharded_server, "GET", "/metrics")
        assert status == 200
        assert "prox_sessions_evicted_total" in metrics
        assert "prox_worker_queue_depth" in metrics

        status, data, _ = request(
            sharded_server, "DELETE", f"/sessions/{session_id}"
        )
        assert status == 200
        status, data, _ = request(
            sharded_server, "GET", f"/sessions/{session_id}/stats"
        )
        assert status == 404

    def test_unscoped_data_route_is_404_in_sharded_mode(self, sharded_server):
        status, data, _ = request(
            sharded_server, "POST", "/select", {"genre": None}
        )
        assert status == 404
        assert "POST /sessions" in data["error"]

    def test_unknown_session_404_passes_through(self, sharded_server):
        status, data, _ = request(
            sharded_server, "POST", "/sessions/ghost/select", {"genre": None}
        )
        assert status == 404


def test_drain_snapshots_and_workers_exit():
    front = WorkerFront(n_workers=2, max_sessions=4)
    front.start()
    server = ProxServer(backend=front)
    server.start()
    try:
        status, created, _ = request(server, "POST", "/sessions", {"seed": 1})
        assert status == 201
        session_id = created["session_id"]
        status, _, _ = request(
            server, "POST", f"/sessions/{session_id}/select", {"genre": None}
        )
        assert status == 200
        drained = server.drain()
        assert drained["inflight_drained"] is True
        snapshotted = [
            sid
            for worker in drained["sessions"].values()
            for sid in worker.get("snapshotted", [])
        ]
        assert snapshotted == [session_id]
        for process in front._processes:
            assert not process.is_alive()
    finally:
        server.stop()


def test_front_capacity_returns_429():
    front = WorkerFront(n_workers=2, max_sessions=1)
    front.start()
    server = ProxServer(backend=front)
    server.start()
    try:
        status, created, _ = request(server, "POST", "/sessions", {})
        assert status == 201
        status, data, headers = request(server, "POST", "/sessions", {})
        assert status == 429
        assert "Retry-After" in headers
        status, _, _ = request(
            server, "DELETE", f"/sessions/{created['session_id']}"
        )
        assert status == 200
        status, _, _ = request(server, "POST", "/sessions", {})
        assert status == 201
    finally:
        server.stop()
        front.stop()
