"""Multithreaded hammer over the session manager.

Many threads create/ingest/summarize/evict/close sessions at once.
The invariants: no lost updates (every successful op's effect is
visible), no double-close effects, every resource account is
unregistered by the end, and errors stay typed (CapacityError /
UnknownSessionError) -- never a torn internal state.
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.datasets import (
    MovieLensConfig,
    MovieLensDeltaConfig,
    generate_movielens,
    generate_movielens_deltas,
)
from repro.observability import resources as _resources
from repro.prox import CapacityError, ProxSession, SessionManager
from repro.prox.manager import UnknownSessionError
from repro.prox.summarization import SummarizationRequest

SMALL = MovieLensConfig(n_users=8, n_movies=6, include_movie_merges=True, seed=2)
N_THREADS = 8
ROUNDS = 4


def test_hammer_create_ingest_summarize_evict_close(tmp_path):
    instance_template = generate_movielens(SMALL)
    deltas = generate_movielens_deltas(
        instance_template, MovieLensDeltaConfig(n_deltas=1, seed=4)
    )

    def factory(session_id):
        session = ProxSession(generate_movielens(SMALL), session_id=session_id)
        session.select_by(genre=None)
        return session

    manager = SessionManager(
        factory=factory, max_sessions=N_THREADS + 2, snapshot_dir=str(tmp_path)
    )
    accounts_before = set(_resources.REGISTRY.ids())
    barrier = threading.Barrier(N_THREADS, timeout=60)
    created_ids = []
    created_lock = threading.Lock()
    outcomes = []

    def worker(index):
        rng = random.Random(index)
        local = []
        barrier.wait()
        for round_index in range(ROUNDS):
            op = rng.choice(["create", "ingest", "summarize", "evict", "close"])
            try:
                if op == "create":
                    session = manager.create()
                    with created_lock:
                        created_ids.append(session.session_id)
                    local.append(("create", "ok"))
                    continue
                with created_lock:
                    if not created_ids:
                        continue
                    target = rng.choice(created_ids)
                if op == "ingest":
                    with manager.acquire(target) as session:
                        if session.ingested_deltas == 0:
                            session.ingest(deltas[0])
                        local.append(("ingest", session.ingested_deltas))
                elif op == "summarize":
                    with manager.acquire(target) as session:
                        result = session.summarize(
                            SummarizationRequest(number_of_steps=2)
                        )
                        local.append(("summarize", result.final_size))
                elif op == "evict":
                    local.append(("evict", manager.evict(target)))
                elif op == "close":
                    closed = manager.close(target)
                    if closed:
                        with created_lock:
                            if target in created_ids:
                                created_ids.remove(target)
                    local.append(("close", closed))
            except (CapacityError, UnknownSessionError):
                local.append((op, "typed-rejection"))
        return local

    try:
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            for result in pool.map(worker, range(N_THREADS)):
                outcomes.extend(result)
    finally:
        manager.close_all()

    # Only typed rejections -- anything else would have raised out of
    # the pool.map above and failed the test.
    assert any(op == "create" for op, _ in outcomes)
    # After close_all: no manager entries, and every account this test
    # registered is unregistered again (no leaked gauges/accounts).
    assert manager.count() == 0
    leaked = set(_resources.REGISTRY.ids()) - accounts_before
    assert leaked == set()
    # Double-close is inert.
    for session_id in list(created_ids):
        assert not manager.close(session_id)


def test_reads_do_not_contend_with_a_long_summarize(tmp_path):
    """A slow summarize on one session never blocks ops on another."""
    def factory(session_id):
        session = ProxSession(generate_movielens(SMALL), session_id=session_id)
        session.select_by(genre=None)
        return session

    manager = SessionManager(
        factory=factory, max_sessions=4, snapshot_dir=str(tmp_path)
    )
    try:
        slow = manager.create()
        fast = manager.create()
        entered = threading.Event()
        release = threading.Event()

        def hold_slow():
            with manager.acquire(slow.session_id):
                entered.set()
                release.wait(timeout=30)

        holder = threading.Thread(target=hold_slow, daemon=True)
        holder.start()
        assert entered.wait(timeout=10)
        # While the slow session's lock is held, the fast session's
        # whole select+summarize round trip completes.
        done = threading.Event()

        def use_fast():
            with manager.acquire(fast.session_id) as session:
                session.summarize(SummarizationRequest(number_of_steps=2))
            done.set()

        user = threading.Thread(target=use_fast, daemon=True)
        user.start()
        assert done.wait(timeout=60), (
            "an unrelated session blocked behind another session's lock"
        )
        release.set()
        holder.join(timeout=10)
    finally:
        manager.close_all()
