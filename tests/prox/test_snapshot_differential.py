"""Snapshot/restore differentials: evicted ≡ never-evicted, bit-exact.

The acceptance bar for the serving tier: a session snapshotted,
evicted and restored (zero-copy in a fresh process, replay in a warm
one) must produce *bit-identical* ``/summarize`` results to a session
that was never evicted -- same sizes, same distances, same merge
sequence -- across greedy/beam × carry/lazy × sampled scoring paths.
Soundness rests on PR 3 (results independent of monomial-id layout)
and PR 6 (repaired ≡ from-scratch), so dropping repair state and
re-interning on restore cannot shift anything.

Plus the golden format test: arena snapshot → mmap-load → snapshot is
byte-identical, and likewise for a whole restored session.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import serialization
from repro.core.beam import BeamSummarizer
from repro.datasets import (
    MovieLensConfig,
    MovieLensDeltaConfig,
    generate_movielens,
    generate_movielens_deltas,
)
from repro.provenance import ir as _ir
from repro.prox import ProxSession, SessionManager
from repro.prox.summarization import SummarizationRequest

CONFIG = MovieLensConfig(n_users=10, n_movies=8, include_movie_merges=True, seed=5)

#: The scoring-path grid of the acceptance criterion.  Greedy via the
#: session API; the beam axis runs BeamSummarizer over the session's
#: own problem (build_problem).
REQUESTS = [
    pytest.param(
        SummarizationRequest(number_of_steps=4, carry="off", lazy=False),
        id="greedy-baseline",
    ),
    pytest.param(
        SummarizationRequest(number_of_steps=4, carry="on", lazy=False),
        id="greedy-carry",
    ),
    pytest.param(
        SummarizationRequest(number_of_steps=4, carry="on", lazy=True),
        id="greedy-carry-lazy",
    ),
    pytest.param(
        SummarizationRequest(
            number_of_steps=4, sample_sharing="on", sample_block=64
        ),
        id="greedy-sampled",
    ),
]


def build_session(session_id=None):
    instance = generate_movielens(CONFIG)
    session = ProxSession(instance, session_id=session_id)
    session.select_by(genre=None)
    for delta in generate_movielens_deltas(
        instance, MovieLensDeltaConfig(n_deltas=2, seed=9)
    ):
        session.ingest(delta)
    return session


def fingerprint(result):
    """Everything the acceptance criterion compares, bit-exact."""
    return {
        "size": result.final_size,
        "distance": repr(result.final_distance),
        "expression": str(result.summary_expression),
        "merges": [
            (record.step, tuple(record.merged), record.label, record.size_after)
            for record in result.steps
        ],
        "stop": result.stop_reason,
    }


@pytest.mark.parametrize("request_", REQUESTS)
def test_evicted_session_summarizes_bit_identically(request_, tmp_path):
    """In-process eviction (warm store: replay path) changes nothing."""
    control = build_session()
    expected = fingerprint(control.summarize(request_, seed=13))

    manager = SessionManager(
        factory=lambda sid: build_session(sid),
        max_sessions=2,
        snapshot_dir=str(tmp_path),
    )
    try:
        subject = manager.create()
        session_id = subject.session_id
        assert manager.evict(session_id)
        with manager.acquire(session_id) as restored:
            actual = fingerprint(restored.summarize(request_, seed=13))
        assert actual == expected
    finally:
        manager.close_all()
        control.close()


def test_beam_summarizes_bit_identically_after_restore(tmp_path):
    """The beam axis: same problem, same beam trajectory after restore."""
    request_ = SummarizationRequest(number_of_steps=4, carry="on")
    control = build_session()
    baseline = BeamSummarizer(
        control.summarization.build_problem(control.selected, request_),
        request_.to_config(seed=13),
        beam_width=2,
    ).run()
    expected = fingerprint(baseline)

    path = str(tmp_path / "beam.snap")
    control.snapshot(path)
    control.close()
    restored = ProxSession.restore(path)
    try:
        result = BeamSummarizer(
            restored.summarization.build_problem(restored.selected, request_),
            request_.to_config(seed=13),
            beam_width=2,
        ).run()
        assert fingerprint(result) == expected
    finally:
        restored.close()


_CHILD_BUILD = """
import json, sys
sys.path.insert(0, {src!r})
from tests.prox.test_snapshot_differential import build_session, fingerprint
from repro.prox.summarization import SummarizationRequest

session = build_session()
result = session.summarize(
    SummarizationRequest(**json.loads(sys.argv[2])), seed=13
)
session.snapshot(sys.argv[1])
print(json.dumps({{"fingerprint": fingerprint(result)}}))
"""

_CHILD_RESTORE = """
import json, sys
sys.path.insert(0, {src!r})
from tests.prox.test_snapshot_differential import fingerprint
from repro.provenance import ir
from repro.prox import ProxSession

session = ProxSession.restore(sys.argv[1])
result = session._require_result()   # lazy re-summarize after rehydrate
print(json.dumps({{
    "fingerprint": fingerprint(result),
    "zero_copy": ir.GLOBAL_STORE.restored(),
}}))
"""


def _run_child(code, *argv):
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env = dict(
        os.environ,
        PYTHONPATH=os.pathsep.join(
            [os.path.join(root, "src"), root, os.environ.get("PYTHONPATH", "")]
        ),
    )
    completed = subprocess.run(
        [sys.executable, "-c", code.format(src=root), *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout)


@pytest.mark.parametrize(
    "request_",
    [
        pytest.param({"number_of_steps": 4, "carry": "off"}, id="baseline"),
        pytest.param(
            {"number_of_steps": 4, "carry": "on", "lazy": True}, id="carry-lazy"
        ),
        pytest.param(
            {"number_of_steps": 4, "sample_sharing": "on"}, id="sampled"
        ),
    ],
)
def test_cross_process_zero_copy_restore_is_bit_identical(request_, tmp_path):
    """A fresh process mmap-loads the snapshot zero-copy and recomputes
    the exact same summary the original process produced."""
    path = str(tmp_path / "session.snap")
    original = _run_child(_CHILD_BUILD, path, json.dumps(request_))
    restored = _run_child(_CHILD_RESTORE, path)
    if _ir.ir_enabled():
        assert restored["zero_copy"], "expected the zero-copy install path"
    assert restored["fingerprint"] == original["fingerprint"]


def test_arena_snapshot_roundtrip_is_byte_identical(tmp_path):
    """Golden: snapshot → mmap-load → snapshot reproduces every byte."""
    if not _ir.ir_enabled():
        pytest.skip("arena snapshots need the interned IR")
    session = build_session()
    try:
        session.summarize(SummarizationRequest(number_of_steps=3))
        blob = serialization.arena_snapshot_bytes(_ir.GLOBAL_STORE)
        path = str(tmp_path / "arena.bin")
        serialization.write_arena_snapshot(_ir.GLOBAL_STORE, path)
        with open(path, "rb") as handle:
            assert handle.read() == blob
        loaded = serialization.load_arena_snapshot(path)
        assert loaded.restored()
        assert serialization.arena_snapshot_bytes(loaded) == blob
        assert loaded.n_monomials() == _ir.GLOBAL_STORE.n_monomials()
    finally:
        session.close()


def test_session_snapshot_restore_resnapshot_is_byte_identical(tmp_path):
    """A restored-but-untouched session re-snapshots to the same bytes
    (fresh process: restore is zero-copy, so no arena drift)."""
    first = str(tmp_path / "first.snap")
    second = str(tmp_path / "second.snap")
    _run_child(_CHILD_BUILD, first, json.dumps({"number_of_steps": 3}))
    code = """
import sys
sys.path.insert(0, {src!r})
from repro.prox import ProxSession

session = ProxSession.restore(sys.argv[1])
session.snapshot(sys.argv[2])
print('{{}}')
"""
    _run_child(code, first, second)
    with open(first, "rb") as a, open(second, "rb") as b:
        assert a.read() == b.read()
