"""HTTP session lifecycle routes on the single-process server.

POST /sessions (201 / 429 + Retry-After), DELETE /sessions/<id>,
evict/restore endpoints, session-scoped data routes and the
``?session=`` query form, plus single-session back-compat.
"""

import http.client
import json

import pytest

from repro.datasets import MovieLensConfig, generate_movielens
from repro.prox import ProxSession, SessionManager
from repro.prox.server import ProxServer

SMALL = MovieLensConfig(n_users=8, n_movies=6, include_movie_merges=True, seed=11)


def request(server, method, path, body=None):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=30)
    payload = json.dumps(body) if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    data = json.loads(response.read())
    headers_out = dict(response.getheaders())
    connection.close()
    return response.status, data, headers_out


def small_factory(session_id):
    return ProxSession(generate_movielens(SMALL), session_id=session_id)


@pytest.fixture()
def server(tmp_path):
    manager = SessionManager(
        factory=small_factory, max_sessions=3, snapshot_dir=str(tmp_path)
    )
    with ProxServer(manager=manager) as running:
        yield running
    manager.close_all()


class TestLifecycleRoutes:
    def test_create_use_delete(self, server):
        status, created, _ = request(server, "POST", "/sessions", {})
        assert status == 201
        session_id = created["session_id"]

        status, data, _ = request(
            server, "POST", f"/sessions/{session_id}/select", {"genre": None}
        )
        assert status == 200 and data["selected_size"] > 0

        # The ?session= query form addresses the same session.
        status, data, _ = request(
            server,
            "POST",
            f"/summarize?session={session_id}",
            {"number_of_steps": 2},
        )
        assert status == 200
        assert data["session_id"] == session_id

        status, data, _ = request(server, "DELETE", f"/sessions/{session_id}")
        assert status == 200 and data["closed"] == session_id
        status, data, _ = request(server, "DELETE", f"/sessions/{session_id}")
        assert status == 404

    def test_unknown_session_is_404(self, server):
        for method, path in [
            ("POST", "/sessions/ghost/select"),
            ("GET", "/sessions/ghost/stats"),
            ("POST", "/sessions/ghost/evict"),
            ("POST", "/sessions/ghost/restore"),
            ("DELETE", "/sessions/ghost"),
        ]:
            status, data, _ = request(
                server, method, path, {} if method == "POST" else None
            )
            assert status == 404, (method, path, data)
            assert "error" in data

    def test_capacity_limit_returns_429_with_retry_after(self, tmp_path):
        manager = SessionManager(
            factory=small_factory, max_sessions=1, snapshot_dir=str(tmp_path)
        )
        with ProxServer(manager=manager) as server:
            status, created, _ = request(server, "POST", "/sessions", {})
            assert status == 201
            status, data, headers = request(server, "POST", "/sessions", {})
            assert status == 429
            assert "Retry-After" in headers
            assert float(headers["Retry-After"]) >= 1.0
            # Deleting frees the slot.
            request(server, "DELETE", f"/sessions/{created['session_id']}")
            status, _, _ = request(server, "POST", "/sessions", {})
            assert status == 201
        manager.close_all()

    def test_evict_then_restore_round_trip(self, server):
        status, created, _ = request(server, "POST", "/sessions", {})
        session_id = created["session_id"]
        request(server, "POST", f"/sessions/{session_id}/select", {"genre": None})
        status, data, _ = request(
            server, "POST", f"/sessions/{session_id}/summarize",
            {"number_of_steps": 2},
        )
        assert status == 200
        expected_size = data["size"]

        status, data, _ = request(server, "POST", f"/sessions/{session_id}/evict")
        assert status == 200 and data["evicted"] == session_id
        status, data, _ = request(server, "GET", f"/sessions/{session_id}/stats")
        assert status == 200 and data["state"] == "evicted"
        # Evicting twice conflicts.
        status, data, _ = request(server, "POST", f"/sessions/{session_id}/evict")
        assert status == 409

        status, data, _ = request(server, "POST", f"/sessions/{session_id}/restore")
        assert status == 200 and data["restored"] == session_id
        # The restored session recomputes its summary transparently.
        status, data, _ = request(
            server, "GET", f"/sessions/{session_id}/summary/expression"
        )
        assert status == 200
        assert f"Provenance Size: {expected_size}" in data["expression"]

    def test_sessions_listing_counts_evictions(self, server):
        status, created, _ = request(server, "POST", "/sessions", {})
        session_id = created["session_id"]
        request(server, "POST", f"/sessions/{session_id}/select", {"genre": None})
        request(server, "POST", f"/sessions/{session_id}/evict")
        status, listing, _ = request(server, "GET", "/sessions")
        assert status == 200
        assert listing["manager"]["evicted_total"] >= 1
        states = {
            row["session_id"]: row.get("state") for row in listing["sessions"]
        }
        assert states.get(session_id) == "evicted"


class TestBackCompat:
    def test_default_session_still_serves_unscoped_routes(self):
        instance = generate_movielens(SMALL)
        with ProxServer(ProxSession(instance)) as server:
            status, data, _ = request(server, "POST", "/select", {"genre": None})
            assert status == 200 and data["selected_size"] > 0
            status, data, _ = request(
                server, "POST", "/summarize", {"number_of_steps": 2}
            )
            assert status == 200
            assert data["session_id"] == server.session.session_id
            status, data, _ = request(server, "GET", "/healthz")
            assert status == 200
            assert data["selected"] is True

    def test_no_default_session_unscoped_routes_404(self, server):
        status, data, _ = request(server, "POST", "/select", {"genre": None})
        assert status == 404
        assert "POST /sessions" in data["error"]

    def test_stop_surfaces_after_shutdown(self, tmp_path):
        manager = SessionManager(
            factory=small_factory, max_sessions=2, snapshot_dir=str(tmp_path)
        )
        server = ProxServer(manager=manager)
        server.start()
        assert server.inflight() == 0
        drained = server.drain()
        assert drained["inflight_drained"] is True
        server.stop()   # clean stop after drain must not raise
        server.stop()   # idempotent
        manager.close_all()
