"""/healthz, /metrics and the request instrumentation of the server."""

import http.client
import json
import re
import time

import pytest

from repro.datasets import MovieLensConfig, generate_movielens
from repro.observability import metrics, tracing
from repro.observability.slo import SloPolicy
from repro.prox import ProxSession
from repro.prox.server import ProxServer

#: One exposition-format line: comment, blank, or `name{labels} value`.
_SAMPLE_LINE = re.compile(
    r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?(\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN))$"
)


@pytest.fixture(scope="module")
def server():
    instance = generate_movielens(
        MovieLensConfig(n_users=12, n_movies=8, include_movie_merges=True, seed=7)
    )
    with ProxServer(ProxSession(instance)) as running:
        yield running


def wait_until(predicate, timeout=5.0):
    """Poll for server-side bookkeeping: request accounting runs after
    the response body is written, so the client can observe the reply
    before the handler thread books it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def fetch(server, method, path, body=None):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    payload = json.dumps(body) if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    raw = response.read()
    content_type = response.getheader("Content-Type", "")
    connection.close()
    return response.status, content_type, raw


def test_healthz(server):
    status, content_type, raw = fetch(server, "GET", "/healthz")
    assert status == 200
    assert content_type.startswith("application/json")
    payload = json.loads(raw)
    assert payload["status"] == "ok"
    assert payload["uptime_seconds"] >= 0.0
    assert payload["pid"] > 0
    assert payload["metric_families"] > 0
    assert payload["selected"] in (True, False)
    assert payload["summarized"] in (True, False)


def test_healthz_reports_serving_tier_state(server):
    """The serving-tier golden keys: session identity, aggregate
    retention across sessions and the process breach count."""
    _, _, raw = fetch(server, "GET", "/healthz")
    payload = json.loads(raw)
    assert payload["session_id"] == server.session.session_id
    assert payload["active_sessions"] >= 1
    assert payload["sessions_arena_bytes"] >= 0
    assert payload["slo_breaches_total"] >= 0


def test_metrics_scrape_is_valid_exposition_text(server):
    status, content_type, raw = fetch(server, "GET", "/metrics")
    assert status == 200
    assert content_type == "text/plain; version=0.0.4; charset=utf-8"
    text = raw.decode("utf-8")
    assert text.endswith("\n")
    for line in text.splitlines():
        assert _SAMPLE_LINE.match(line), f"malformed exposition line: {line!r}"
    # every family carries HELP and TYPE headers
    typed = re.findall(r"^# TYPE (\S+) (counter|gauge|histogram)$", text, re.M)
    helped = {name for name, _ in re.findall(r"^# HELP (\S+) (.*)$", text, re.M)}
    assert {name for name, _ in typed} <= helped


def test_metrics_scrape_includes_the_required_families(server):
    _, _, raw = fetch(server, "GET", "/metrics")
    text = raw.decode("utf-8")
    # Required by the acceptance criteria, present (0-valued) even on an
    # idle server -- the CI probe greps for exactly these.
    assert re.search(r"^prox_summarize_steps_total \d+$", text, re.M)
    assert re.search(r"^prox_scoring_fallbacks_total \d+$", text, re.M)
    assert "# TYPE prox_scoring_seconds histogram" in text
    assert re.search(r'^prox_scoring_seconds_bucket\{le="\+Inf"\} \d+$', text, re.M)
    assert re.search(r"^prox_scoring_seconds_count \d+$", text, re.M)


def test_metrics_scrape_includes_the_ir_gauges(server):
    """The interned-IR gauges are present (0-valued is fine) even on an
    idle server -- the CI probe greps for exactly these lines."""
    _, _, raw = fetch(server, "GET", "/metrics")
    text = raw.decode("utf-8")
    assert "# TYPE repro_ir_interned_annotations gauge" in text
    assert "# TYPE repro_ir_arena_bytes gauge" in text
    assert re.search(r"^repro_ir_interned_annotations \d+$", text, re.M)
    assert re.search(r"^repro_ir_arena_bytes \d+$", text, re.M)


def test_healthz_reports_ir_state(server):
    _, _, raw = fetch(server, "GET", "/healthz")
    payload = json.loads(raw)
    assert payload["ir_mode"] in ("ir", "legacy")
    assert payload["ir_interned_annotations"] >= 0
    assert payload["ir_arena_bytes"] >= 0


def test_healthz_reports_kernel_backend(server):
    from repro.core import kernels

    _, _, raw = fetch(server, "GET", "/healthz")
    payload = json.loads(raw)
    assert payload["kernel"] in ("python", "numpy", "native")
    assert payload["kernel"] == kernels.active_backend()


def test_metrics_scrape_includes_the_kernel_gauge(server):
    """The kernel info gauge is present with a sample per backend (1 for
    the active one) -- the CI probe greps for exactly this family."""
    _, _, raw = fetch(server, "GET", "/metrics")
    text = raw.decode("utf-8")
    assert "# TYPE repro_kernel_backend gauge" in text
    from repro.core import kernels

    active = kernels.active_backend()
    other = "python" if active == "numpy" else "numpy"
    assert f'repro_kernel_backend{{backend="{active}"}} 1' in text
    assert f'repro_kernel_backend{{backend="{other}"}} 0' in text


@pytest.mark.skipif(not metrics.ENABLED, reason="metrics disabled via REPRO_METRICS")
def test_ir_gauges_advance_after_a_summarization(server):
    from repro.provenance import ir

    _, _, raw = fetch(server, "GET", "/titles")
    titles = json.loads(raw)["titles"][:4]
    fetch(server, "POST", "/select", {"titles": titles})
    status, _, _ = fetch(
        server, "POST", "/summarize", {"distance_weight": 0.7, "number_of_steps": 2}
    )
    assert status == 200
    _, _, raw = fetch(server, "GET", "/metrics")
    text = raw.decode("utf-8")
    match = re.search(r"^repro_ir_interned_annotations (\d+)$", text, re.M)
    assert match is not None
    if ir.ir_enabled():
        # The session interner saw the selection's annotations.
        assert int(match.group(1)) > 0


@pytest.mark.skipif(not metrics.ENABLED, reason="metrics disabled via REPRO_METRICS")
def test_counters_advance_across_a_session(server):
    steps_total = metrics.REGISTRY.get("prox_summarize_steps_total")
    http_requests = metrics.REGISTRY.get("prox_http_requests_total")
    steps_before = steps_total.value()

    _, _, raw = fetch(server, "GET", "/titles")
    titles = json.loads(raw)["titles"][:4]
    status, _, _ = fetch(server, "POST", "/select", {"titles": titles})
    assert status == 200
    status, _, raw = fetch(
        server, "POST", "/summarize", {"distance_weight": 0.7, "number_of_steps": 3}
    )
    assert status == 200
    result = json.loads(raw)

    assert steps_total.value() == steps_before + result["steps"]
    assert (
        http_requests.value(method="POST", path="/summarize", status="200") >= 1
    )
    # the scrape itself is counted too
    fetch(server, "GET", "/metrics")
    assert http_requests.value(method="GET", path="/metrics", status="200") >= 1


def test_summarize_response_reports_scoring_paths_and_timings(server):
    _, _, raw = fetch(server, "GET", "/titles")
    titles = json.loads(raw)["titles"][:4]
    fetch(server, "POST", "/select", {"titles": titles})
    status, _, raw = fetch(
        server, "POST", "/summarize", {"distance_weight": 0.7, "number_of_steps": 3}
    )
    assert status == 200
    result = json.loads(raw)

    assert result["total_seconds"] >= 0.0
    assert sum(result["scoring_paths"].values()) == result["steps"]
    assert len(result["steps_detail"]) == result["steps"]
    for detail in result["steps_detail"]:
        assert detail["scoring_path"] in {"fast", "fast+incremental", "naive"}
        assert detail["step_seconds"] >= detail["candidate_seconds"] >= 0.0
        assert detail["n_candidates"] >= 1
        assert isinstance(detail["merged"], list)


def test_unknown_paths_fold_into_the_other_label(server):
    status, _, _ = fetch(server, "GET", "/definitely/not/a/route")
    assert status == 404
    if metrics.ENABLED:
        http_requests = metrics.REGISTRY.get("prox_http_requests_total")
        assert http_requests.value(method="GET", path="other", status="404") >= 1


# -- session accounting endpoints ----------------------------------------------


def test_sessions_lists_accounts_and_the_eviction_ranking(server):
    status, _, raw = fetch(server, "GET", "/sessions")
    assert status == 200
    payload = json.loads(raw)
    assert payload["count"] >= 1
    ids = [row["session_id"] for row in payload["sessions"]]
    assert server.session.session_id in ids
    ranked = [row["session_id"] for row in payload["eviction_ranking"]]
    assert sorted(ranked) == sorted(ids)
    for row in payload["eviction_ranking"]:
        assert row["reasons"]


def test_session_stats_answers_for_the_live_session(server):
    session_id = server.session.session_id
    status, _, raw = fetch(server, "GET", f"/sessions/{session_id}/stats")
    assert status == 200
    payload = json.loads(raw)
    assert payload["session_id"] == session_id
    assert payload["retained_bytes"] >= 0
    assert payload["eviction_score"] >= 0.0


def test_session_stats_404_for_unknown_sessions(server):
    status, _, raw = fetch(server, "GET", "/sessions/no-such/stats")
    assert status == 404
    assert "unknown session" in json.loads(raw)["error"]
    if metrics.ENABLED:
        # the parameterized route folds into one bounded label
        http_requests = metrics.REGISTRY.get("prox_http_requests_total")
        assert wait_until(
            lambda: http_requests.value(
                method="GET", path="/sessions/<id>/stats", status="404"
            )
            >= 1
        )


# -- debug endpoints -----------------------------------------------------------


def test_debug_profile_burst_samples_when_the_env_knob_is_off(server):
    """Without REPRO_PROFILE the endpoint serves a bounded on-demand
    burst (the continuous profiler is absent under the test env)."""
    status, _, raw = fetch(server, "GET", "/debug/profile?seconds=0.05&hz=100")
    assert status == 200
    payload = json.loads(raw)
    assert payload["burst"] is True
    assert payload["samples"] >= 1
    assert payload["hz"] == 100.0
    assert not payload["running"]


@pytest.mark.parametrize(
    "query",
    ["seconds=99", "seconds=0", "seconds=nope", "hz=0", "hz=1e9", "hz=-5"],
)
def test_debug_profile_rejects_out_of_range_bursts(server, query):
    status, _, raw = fetch(server, "GET", f"/debug/profile?{query}")
    assert status == 400
    assert "invalid profile parameters" in json.loads(raw)["error"]


def test_debug_slow_requests_shape(server):
    status, _, raw = fetch(server, "GET", "/debug/slow_requests")
    assert status == 200
    payload = json.loads(raw)
    assert isinstance(payload["slow_requests"], list)
    assert payload["total_recorded"] >= len(payload["slow_requests"])
    assert payload["slo"]["targets_seconds"]["/summarize"] == 2.0
    assert payload["tracing_enabled"] in (True, False)


# -- SLO breach tail sampling --------------------------------------------------


@pytest.fixture()
def strict_server():
    """A server whose /titles target is impossibly tight, so any real
    request breaches and lands in the slow-request ring."""
    instance = generate_movielens(MovieLensConfig(n_users=8, n_movies=6, seed=11))
    policy = SloPolicy(targets={"/titles": 1e-6}, ring_size=8)
    with ProxServer(ProxSession(instance), slo=policy) as running:
        yield running


def test_breaching_requests_are_counted_and_retained(strict_server):
    if metrics.ENABLED:
        from repro.observability import slo

        breaches_before = slo.SLO_BREACHES.value(scope="/titles")
    status, _, _ = fetch(strict_server, "GET", "/titles")
    assert status == 200

    assert wait_until(lambda: strict_server.slow_log.total_recorded >= 1)
    _, _, raw = fetch(strict_server, "GET", "/debug/slow_requests")
    payload = json.loads(raw)
    (entry,) = [
        row for row in payload["slow_requests"] if row["path"] == "/titles"
    ]
    assert entry["method"] == "GET"
    assert entry["status"] == 200
    assert entry["seconds"] > entry["target_seconds"]
    assert "trace" not in entry  # tracing off: tail sampling retains no tree
    if metrics.ENABLED:
        assert wait_until(
            lambda: slo.SLO_BREACHES.value(scope="/titles") == breaches_before + 1
        )
    # healthz mirrors the process breach count, lock-free
    _, _, raw = fetch(strict_server, "GET", "/healthz")
    assert json.loads(raw)["slo_breaches_total"] >= 1


def test_breaching_requests_retain_their_span_tree_when_tracing_is_on(
    strict_server,
):
    original = tracing.is_enabled()
    tracing.set_enabled(True)
    try:
        status, _, _ = fetch(strict_server, "GET", "/titles")
        assert status == 200
        assert wait_until(
            lambda: any(
                "trace" in row
                for row in strict_server.slow_log.snapshot()
                if row["path"] == "/titles"
            )
        )
        _, _, raw = fetch(strict_server, "GET", "/debug/slow_requests")
        payload = json.loads(raw)
        traced = [
            row
            for row in payload["slow_requests"]
            if row["path"] == "/titles" and "trace" in row
        ]
        assert traced, "breach under tracing should retain its span tree"
        assert traced[-1]["trace"]["name"] == "http[GET /titles]"
    finally:
        tracing.set_enabled(original)
        tracing.take_trace()
