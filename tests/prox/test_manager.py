"""SessionManager lifecycle: create/lookup/close, capacity, eviction.

The manager is the actor behind the serving tier: per-session locks,
429-mapped capacity limits, and snapshot eviction driven by the PR 7
eviction ranking -- with transparent rehydration on next touch.
"""

import time

import pytest

from repro.datasets import MovieLensConfig, generate_movielens
from repro.observability import resources as _resources
from repro.prox import CapacityError, ProxSession, SessionManager
from repro.prox.manager import UnknownSessionError
from repro.prox.summarization import SummarizationRequest

SMALL = MovieLensConfig(n_users=8, n_movies=6, include_movie_merges=True, seed=3)


def small_factory(session_id):
    return ProxSession(generate_movielens(SMALL), session_id=session_id)


@pytest.fixture()
def manager(tmp_path):
    manager = SessionManager(
        factory=small_factory, max_sessions=4, snapshot_dir=str(tmp_path)
    )
    yield manager
    manager.close_all()


class TestLifecycle:
    def test_create_lookup_close(self, manager):
        session = manager.create()
        assert session.session_id in manager
        with manager.acquire(session.session_id) as acquired:
            assert acquired is session
        assert manager.close(session.session_id)
        assert session.session_id not in manager
        # Idempotent: closing again reports False, never raises.
        assert not manager.close(session.session_id)

    def test_create_with_explicit_id(self, manager):
        session = manager.create("alice")
        assert session.session_id == "alice"
        with pytest.raises(ValueError):
            manager.create("alice")
        with pytest.raises(ValueError):
            manager.create("../escape")

    def test_acquire_unknown_session(self, manager):
        with pytest.raises(UnknownSessionError):
            with manager.acquire("nope"):
                pass

    def test_close_unregisters_resource_account(self, manager):
        session = manager.create()
        session_id = session.session_id
        assert _resources.REGISTRY.get(session_id) is not None
        manager.close(session_id)
        assert _resources.REGISTRY.get(session_id) is None

    def test_adopt_external_session(self, manager):
        session = ProxSession(generate_movielens(SMALL))
        session_id = manager.adopt(session)
        with manager.acquire(session_id) as acquired:
            assert acquired is session
        manager.close(session_id)


class TestCapacity:
    def test_capacity_limit_raises_with_retry_after(self, tmp_path):
        manager = SessionManager(
            factory=small_factory, max_sessions=2, snapshot_dir=str(tmp_path)
        )
        try:
            manager.create()
            manager.create()
            with pytest.raises(CapacityError) as excinfo:
                manager.create()
            assert excinfo.value.retry_after >= 1.0
            assert manager.rejected_total == 1
            # Closing one frees a slot.
            manager.close(manager.session_ids()[0])
            manager.create()
            assert manager.count() == 2
        finally:
            manager.close_all()

    def test_failed_factory_releases_the_slot(self, tmp_path):
        calls = []

        def exploding(session_id):
            calls.append(session_id)
            raise RuntimeError("boom")

        manager = SessionManager(
            factory=exploding, max_sessions=1, snapshot_dir=str(tmp_path)
        )
        with pytest.raises(RuntimeError):
            manager.create()
        assert manager.count() == 0
        # The slot is reusable with a working factory.
        manager.create_with(None, small_factory)
        assert manager.count() == 1
        manager.close_all()


class TestEviction:
    def test_evict_and_transparent_restore(self, manager):
        session = manager.create()
        session_id = session.session_id
        with manager.acquire(session_id) as live:
            live.select_by(genre=None)
            result = live.summarize(SummarizationRequest(number_of_steps=3))
        before = (result.final_size, str(result.summary_expression))
        assert manager.evict(session_id)
        assert manager.evicted_total == 1
        # Evicted: the account is gone, the entry remains.
        assert _resources.REGISTRY.get(session_id) is None
        assert session_id in manager
        assert not manager.evict(session_id)  # already evicted
        # Next acquire transparently rehydrates; the result recomputes
        # bit-identically on first touch.
        with manager.acquire(session_id) as restored:
            assert restored is not session
            rehydrated = restored._require_result()
            after = (rehydrated.final_size, str(rehydrated.summary_expression))
        assert before == after
        assert manager.restored_total == 1

    def test_close_evicted_session_removes_snapshot(self, manager, tmp_path):
        session = manager.create()
        session_id = session.session_id
        with manager.acquire(session_id) as live:
            live.select_by(genre=None)
        assert manager.evict(session_id)
        snapshots = list(tmp_path.glob("*.snap"))
        assert len(snapshots) == 1
        assert manager.close(session_id)
        assert not list(tmp_path.glob("*.snap"))

    def test_unsnapshotable_session_is_not_evicted(self, manager):
        # An adopted session whose instance has no generator config
        # cannot be rebuilt from disk, so evict refuses.
        instance = generate_movielens(SMALL)
        instance.metadata.pop("config", None)
        session_id = manager.adopt(ProxSession(instance))
        assert not manager.evict(session_id)
        with manager.acquire(session_id) as still_live:
            assert still_live is not None

    def test_eviction_loop_evicts_idle_sessions(self, tmp_path):
        manager = SessionManager(
            factory=small_factory,
            max_sessions=4,
            snapshot_dir=str(tmp_path),
            evict_idle_seconds=0.05,
            eviction_interval=0.05,
        )
        try:
            session = manager.create()
            with manager.acquire(session.session_id) as live:
                live.select_by(genre=None)
            manager.start_eviction_loop()
            deadline = time.monotonic() + 10.0
            while manager.evicted_total == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert manager.evicted_total >= 1
            # Still addressable: rehydrates on touch.
            with manager.acquire(session.session_id) as restored:
                assert restored.selected is not None
        finally:
            manager.stop_eviction_loop()
            manager.close_all()

    def test_drain_snapshots_all_live_sessions(self, manager):
        first = manager.create()
        second = manager.create()
        for session in (first, second):
            with manager.acquire(session.session_id) as live:
                live.select_by(genre=None)
        outcome = manager.drain()
        assert sorted(outcome["snapshotted"]) == sorted(
            [first.session_id, second.session_id]
        )
        assert outcome["skipped"] == []
        assert manager.stats()["evicted"] == 2
