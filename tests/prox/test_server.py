"""The PROX HTTP API (§7.1's REST services)."""

import http.client
import json

import pytest

from repro.datasets import MovieLensConfig, generate_movielens
from repro.prox import ProxSession
from repro.prox.server import ProxServer


@pytest.fixture(scope="module")
def server():
    instance = generate_movielens(
        MovieLensConfig(n_users=12, n_movies=8, include_movie_merges=True, seed=7)
    )
    with ProxServer(ProxSession(instance)) as running:
        yield running


def request(server, method, path, body=None):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    payload = json.dumps(body) if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    data = json.loads(response.read())
    connection.close()
    return response.status, data


def test_titles(server):
    status, data = request(server, "GET", "/titles")
    assert status == 200
    assert len(data["titles"]) == 8
    status, data = request(server, "GET", "/titles?search=titan")
    assert status == 200
    assert all("titan" in title.lower() for title in data["titles"])


def test_full_session_flow(server):
    status, data = request(server, "GET", "/titles")
    titles = data["titles"][:4]
    status, data = request(server, "POST", "/select", {"titles": titles})
    assert status == 200
    assert data["selected_size"] > 0

    status, data = request(
        server,
        "POST",
        "/summarize",
        {"distance_weight": 0.7, "number_of_steps": 4},
    )
    assert status == 200
    assert data["steps"] <= 4
    assert 0.0 <= data["distance"] <= 1.0

    status, data = request(server, "GET", "/summary/expression")
    assert status == 200
    assert "Provenance Size" in data["expression"]

    status, data = request(server, "GET", "/summary/groups")
    assert status == 200
    for group in data["groups"]:
        assert group["size"] == len(group["members"]) >= 2

    status, data = request(
        server, "POST", "/evaluate", {"false_attributes": {"gender": "M"}}
    )
    assert status == 200
    assert data["original"]["evaluation_time_ns"] > 0
    assert data["summary"]["evaluation_time_ns"] > 0


def test_select_by_attributes(server):
    status, data = request(server, "POST", "/select", {"genre": "no-such-genre"})
    assert status == 400
    assert "no movies match" in data["error"]


def test_errors(server):
    status, data = request(server, "GET", "/nope")
    assert status == 404
    status, data = request(server, "POST", "/summarize", {"bogus_param": 1})
    assert status == 400
    assert "unknown summarization parameters" in data["error"]


def test_summarize_before_select_conflicts():
    instance = generate_movielens(MovieLensConfig(n_users=8, n_movies=5, seed=1))
    with ProxServer(ProxSession(instance)) as fresh:
        status, data = request(fresh, "POST", "/summarize", {})
        assert status == 409
        assert "select provenance first" in data["error"]


def test_double_start_rejected():
    instance = generate_movielens(MovieLensConfig(n_users=8, n_movies=5, seed=1))
    server = ProxServer(ProxSession(instance))
    server.start()
    try:
        with pytest.raises(RuntimeError, match="already started"):
            server.start()
    finally:
        server.stop()
    server.stop()  # idempotent


def test_ingest_endpoint_streams_and_repairs():
    from repro.datasets.movielens import (
        MovieLensDeltaConfig,
        generate_movielens_deltas,
    )
    from repro.serialization import delta_to_dict

    instance = generate_movielens(MovieLensConfig(n_users=10, n_movies=6, seed=2))
    deltas = generate_movielens_deltas(
        instance, MovieLensDeltaConfig(n_deltas=2, spam_flag_every=2, seed=6)
    )
    with ProxServer(ProxSession(instance)) as fresh:
        status, data = request(fresh, "GET", "/titles")
        request(fresh, "POST", "/select", {"titles": data["titles"]})
        status, before = request(
            fresh, "POST", "/summarize", {"number_of_steps": 3}
        )
        assert status == 200
        for index, delta in enumerate(deltas):
            status, stats = request(fresh, "POST", "/ingest", delta_to_dict(delta))
            assert status == 200
            assert stats["ingested_deltas"] == index + 1
        status, after = request(
            fresh, "POST", "/summarize", {"number_of_steps": 3}
        )
        assert status == 200
        assert after["steps"] <= 3


def test_ingest_endpoint_errors():
    instance = generate_movielens(MovieLensConfig(n_users=8, n_movies=5, seed=1))
    with ProxServer(ProxSession(instance)) as fresh:
        # Before any selection the session refuses deltas.
        status, data = request(fresh, "POST", "/ingest", {})
        assert status == 409
        assert "select provenance first" in data["error"]
        status, data = request(fresh, "GET", "/titles")
        request(fresh, "POST", "/select", {"titles": data["titles"]})
        status, data = request(
            fresh,
            "POST",
            "/ingest",
            {"terms": [{"annotations": ["nope"], "value": 1.0}]},
        )
        assert status == 400
        assert "unknown annotation" in data["error"]
