"""JSON round-trips for expressions, universes and summaries."""

import io
import json

import pytest

from repro import serialization as ser
from repro.core import SummarizationConfig, Summarizer
from repro.datasets import (
    DDPConfig,
    MovieLensConfig,
    generate_ddp,
    generate_movielens,
)
from repro.provenance import MAX, Guard, TensorSum, Term


class TestAnnotations:
    def test_universe_round_trip(self, thesis_universe):
        thesis_universe.new_summary(
            [thesis_universe["U1"], thesis_universe["U2"]], label="Female"
        )
        data = ser.universe_to_dict(thesis_universe)
        restored = ser.universe_from_dict(json.loads(ser.dumps(data)))
        assert restored.names() == thesis_universe.names()
        for name in thesis_universe.names():
            assert restored[name] == thesis_universe[name]

    def test_missing_field(self):
        with pytest.raises(ser.SerializationError, match="missing"):
            ser.annotation_from_dict({"name": "a"})


class TestTensorSum:
    def test_round_trip_with_guards(self):
        expression = TensorSum(
            [
                Term(
                    ("U1",),
                    3.0,
                    count=2,
                    group="MP",
                    guards=(Guard(("S1", "U1"), 5, ">", 2),),
                ),
                Term(("U2",), 5.0, group=None),
            ],
            MAX,
        )
        restored = ser.tensor_sum_from_dict(
            json.loads(ser.dumps(ser.tensor_sum_to_dict(expression)))
        )
        assert str(restored) == str(expression)
        assert restored.size() == expression.size()
        assert restored.monoid.name == "MAX"

    def test_generated_instance_round_trip(self):
        expression = generate_movielens(MovieLensConfig(seed=3)).expression
        restored = ser.expression_from_dict(ser.expression_to_dict(expression))
        assert str(restored) == str(expression)
        cancelled = frozenset(list(expression.annotation_names())[:3])
        assert restored.evaluate(cancelled) == expression.evaluate(cancelled)


class TestDDP:
    def test_round_trip(self):
        expression = generate_ddp(DDPConfig(seed=3)).expression
        restored = ser.expression_from_dict(ser.expression_to_dict(expression))
        assert str(restored) == str(expression)
        assert restored.evaluate(frozenset({"c1"})) == expression.evaluate(
            frozenset({"c1"})
        )

    def test_unknown_transition_kind(self):
        payload = {
            "version": 1,
            "kind": "ddp",
            "executions": [[{"kind": "quantum", "var": "x"}]],
        }
        with pytest.raises(ser.SerializationError):
            ser.ddp_from_dict(payload)


class TestSummary:
    def test_summary_round_trip_preserves_provisioning(self):
        instance = generate_movielens(MovieLensConfig(n_users=10, n_movies=5, seed=2))
        result = Summarizer(
            instance.problem(), SummarizationConfig(w_dist=0.5, max_steps=4, seed=0)
        ).run()
        payload = json.loads(ser.dumps(ser.summary_to_dict(result)))
        expression, mapping, annotations = ser.summary_from_dict(payload)
        assert expression.size() == result.final_size
        assert mapping == result.mapping.as_dict()
        # Re-registering the summary annotations restores lift ability.
        restored_members = {
            annotation.name: annotation.base_members() for annotation in annotations
        }
        for name, members in result.summary_groups().items():
            assert restored_members[name] == frozenset(members)

    def test_dump_to_stream(self):
        instance = generate_movielens(MovieLensConfig(n_users=8, n_movies=4, seed=1))
        buffer = io.StringIO()
        ser.dump(ser.expression_to_dict(instance.expression), buffer)
        buffer.seek(0)
        restored = ser.load_expression(buffer)
        assert str(restored) == str(instance.expression)


class TestErrors:
    def test_kind_mismatch(self):
        with pytest.raises(ser.SerializationError, match="expected kind"):
            ser.tensor_sum_from_dict({"kind": "ddp", "version": 1})

    def test_future_version(self):
        with pytest.raises(ser.SerializationError, match="newer"):
            ser.universe_from_dict(
                {"kind": "universe", "version": 999, "annotations": []}
            )

    def test_unknown_expression_kind(self):
        with pytest.raises(ser.SerializationError, match="unknown expression kind"):
            ser.expression_from_dict({"kind": "matrix"})

    def test_unserializable_expression(self):
        with pytest.raises(ser.SerializationError, match="cannot serialize"):
            ser.expression_to_dict(42)
