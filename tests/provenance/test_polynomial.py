"""Canonical N[Ann] polynomials: ring laws and the universal property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.provenance import (
    BOOLEAN,
    NATURALS,
    ONE,
    TROPICAL,
    ZERO,
    Comparison,
    Polynomial,
    Var,
    from_expression,
)


@st.composite
def polynomials(draw):
    names = ("a", "b", "c")
    n_terms = draw(st.integers(min_value=0, max_value=4))
    terms = {}
    for _ in range(n_terms):
        monomial_names = draw(
            st.lists(st.sampled_from(names), min_size=0, max_size=3)
        )
        key = Polynomial.variable("_").terms()  # unused; build via helper
        poly_term = tuple(
            sorted(
                {name: monomial_names.count(name) for name in set(monomial_names)}.items()
            )
        )
        terms[poly_term] = terms.get(poly_term, 0) + draw(
            st.integers(min_value=1, max_value=3)
        )
    return Polynomial(terms)


class TestConstruction:
    def test_basic_identities(self):
        a = Polynomial.variable("a")
        assert a + Polynomial.zero() == a
        assert a * Polynomial.one() == a
        assert a * Polynomial.zero() == Polynomial.zero()
        assert Polynomial.constant(0) == Polynomial.zero()

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            Polynomial({(): -1})
        with pytest.raises(ValueError):
            Polynomial.constant(-2)

    def test_canonical_equality(self):
        a, b, c = (Polynomial.variable(name) for name in "abc")
        assert a * (b + c) == a * b + a * c
        assert a + a == Polynomial.constant(2) * a
        assert (a + b) * (a + b) == a * a + Polynomial.constant(2) * a * b + b * b

    def test_structure_queries(self):
        a, b = Polynomial.variable("a"), Polynomial.variable("b")
        poly = Polynomial.constant(2) * a * b * b + a
        assert poly.coefficient(["a", "b", "b"]) == 2
        assert poly.coefficient(["a"]) == 1
        assert poly.coefficient(["b"]) == 0
        assert poly.degree() == 3
        assert poly.size() == 2 * 3 + 1
        assert poly.annotation_names() == frozenset({"a", "b"})
        assert str(poly) == "a + 2·a·b^2"


class TestHomomorphisms:
    def test_rename_merges_monomials(self):
        a, b = Polynomial.variable("a"), Polynomial.variable("b")
        renamed = (a + b).rename({"a": "x", "b": "x"})
        assert renamed == Polynomial.constant(2) * Polynomial.variable("x")
        squared = (a * b).rename({"a": "x", "b": "x"})
        assert squared.coefficient(["x", "x"]) == 1

    @settings(max_examples=50, deadline=None)
    @given(first=polynomials(), second=polynomials())
    def test_rename_is_a_semiring_hom(self, first, second):
        mapping = {"a": "x", "b": "x"}
        assert (first + second).rename(mapping) == first.rename(mapping) + second.rename(
            mapping
        )
        assert (first * second).rename(mapping) == first.rename(mapping) * second.rename(
            mapping
        )

    @settings(max_examples=50, deadline=None)
    @given(
        first=polynomials(),
        second=polynomials(),
        bits=st.tuples(st.booleans(), st.booleans(), st.booleans()),
    )
    def test_universal_property_boolean(self, first, second, bits):
        """Evaluation into any semiring is a hom (the freeness of N[Ann])."""
        valuation = dict(zip("abc", bits))
        evaluate = lambda poly: poly.evaluate_in(BOOLEAN, valuation)
        assert evaluate(first + second) == BOOLEAN.plus(evaluate(first), evaluate(second))
        assert evaluate(first * second) == BOOLEAN.times(
            evaluate(first), evaluate(second)
        )

    def test_evaluate_in_naturals_and_tropical(self):
        a, b = Polynomial.variable("a"), Polynomial.variable("b")
        poly = Polynomial.constant(2) * a + a * b
        assert poly.evaluate_in(NATURALS, {"a": 3, "b": 4}) == 2 * 3 + 12
        # Tropical: + is min, · is +; 2·a is a ⊕ a = min(a, a) = a.
        assert poly.evaluate_in(TROPICAL, {"a": 3.0, "b": 4.0}) == min(3.0, 7.0)

    def test_missing_annotation(self):
        with pytest.raises(KeyError, match="valuation missing"):
            Polynomial.variable("a").evaluate_in(NATURALS, {})


class TestFromExpression:
    def test_distributes(self):
        expr = Var("a") * (Var("b") + Var("c"))
        poly = from_expression(expr)
        assert poly == from_expression(Var("a") * Var("b") + Var("a") * Var("c"))

    def test_constants(self):
        assert from_expression(ZERO) == Polynomial.zero()
        assert from_expression(ONE) == Polynomial.one()
        assert from_expression(Var("a") + ZERO) == Polynomial.variable("a")

    def test_truth_agrees_with_boolean_evaluation(self):
        expr = Var("a") * Var("b") + Var("c")
        poly = from_expression(expr)
        for mask in range(8):
            assignment = {
                name: bool(mask >> bit & 1) for bit, name in enumerate("abc")
            }
            assert expr.truth(assignment) == poly.evaluate_in(BOOLEAN, assignment)

    def test_comparisons_rejected(self):
        guarded = Comparison(Var("s"), 5, ">", 2)
        with pytest.raises(TypeError, match="abstract guards"):
            from_expression(guarded)
