"""Truth valuations (§2.3)."""

from repro.provenance import ALL_TRUE, Valuation, cancel


def test_defaults_to_true():
    valuation = Valuation()
    assert valuation.truth("anything")
    assert valuation.value("anything") == 1.0
    assert valuation.false_set() == frozenset()


def test_cancel_constructor():
    valuation = cancel(["U1", "U2"])
    assert not valuation.truth("U1")
    assert valuation.truth("U3")
    assert valuation.false_set() == frozenset({"U1", "U2"})
    assert "U1" in str(valuation)


def test_cancelling_copies():
    base = cancel(["U1"], weight=2.0, label="spammer")
    extended = base.cancelling(["U2"])
    assert not extended.truth("U2")
    assert base.truth("U2")  # original unchanged
    assert extended.weight == 2.0


def test_truth_map():
    valuation = cancel(["a"])
    assert valuation.truth_map(["a", "b"]) == {"a": False, "b": True}


def test_fractional_values():
    valuation = Valuation({"c1": 0.5})
    assert valuation.value("c1") == 0.5
    assert valuation.truth("c1")  # non-zero is true
    assert valuation.false_set() == frozenset()


def test_all_true_singleton_and_labels():
    assert str(ALL_TRUE) == "all-true"
    assert str(Valuation({"x": 0.0})) == "cancel {x}"
    assert str(cancel(["y"], label="custom")) == "custom"
