"""The tensor-sum normal form: congruence, mapping, evaluation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.provenance import MAX, SUM, Guard, TensorSum, Term


class TestConstruction:
    def test_congruent_terms_merge(self, match_point):
        mapped = match_point.apply_mapping({"U1": "Female", "U2": "Female"})
        # Example 3.1.1: Female ⊗ (5,2) ⊕ U3 ⊗ (3,1)
        assert len(mapped) == 2
        assert mapped.size() == 2
        by_ann = {term.annotations: term for term in mapped.terms}
        female = by_ann[("Female",)]
        assert (female.value, female.count) == (5.0, 2)

    def test_audience_mapping(self, match_point):
        mapped = match_point.apply_mapping({"U1": "Audience", "U3": "Audience"})
        by_ann = {term.annotations: term for term in mapped.terms}
        audience = by_ann[("Audience",)]
        assert (audience.value, audience.count) == (3.0, 2)
        assert by_ann[("U2",)].value == 5.0

    def test_size_counts_guard_annotations(self):
        term = Term(
            ("U1",),
            3.0,
            group="MP",
            guards=(Guard(("S1", "U1"), 5, ">", 2),),
        )
        assert TensorSum([term], MAX).size() == 3

    def test_groups_order(self, thesis_movies):
        assert thesis_movies.groups() == ("MatchPoint", "BlueJasmine")


class TestGuards:
    def test_guard_semantics(self):
        guard = Guard(("S1",), 5, ">", 2)
        assert guard.satisfied(frozenset())
        assert not guard.satisfied(frozenset({"S1"}))
        equality = Guard(("D1", "D2"), 1, "==", 0)
        assert not equality.satisfied(frozenset())
        assert equality.satisfied(frozenset({"D1"}))

    def test_invalid_guard_operator(self):
        with pytest.raises(ValueError, match="unsupported guard operator"):
            Guard(("a",), 1, "<>", 0)

    def test_statically_false_guard_blocks_term(self):
        term = Term(("U",), 4.0, group="g", guards=(Guard(("S",), 1, ">", 2),))
        expression = TensorSum([term], MAX)
        assert expression.full_vector()["g"].count == 0


class TestEvaluation:
    def test_cancel_annotation(self, thesis_movies):
        vector = thesis_movies.evaluate(frozenset({"U2"}))
        assert vector["MatchPoint"].finalized_value() == 3.0
        assert vector["BlueJasmine"].finalized_value() == 0.0

    def test_cache_unaffected_groups(self, thesis_movies):
        thesis_movies.full_vector()  # prime caches
        vector = thesis_movies.evaluate(frozenset({"U1"}))
        assert vector["BlueJasmine"].finalized_value() == 4.0

    def test_irrelevant_cancellations_return_full(self, thesis_movies):
        full = thesis_movies.full_vector()
        assert thesis_movies.evaluate(frozenset({"nobody"})) == full

    def test_scan_equals_masked_eval(self, thesis_movies):
        names = sorted(thesis_movies.annotation_names())
        for mask in range(2 ** len(names)):
            cancelled = frozenset(
                name for bit, name in enumerate(names) if mask >> bit & 1
            )
            masked = thesis_movies.evaluate(cancelled)
            scanned = thesis_movies.evaluate_scan(
                {name: name not in cancelled for name in names}
            )
            assert masked == scanned, cancelled


@st.composite
def random_tensor_sums(draw):
    n_terms = draw(st.integers(min_value=1, max_value=12))
    names = [f"a{i}" for i in range(6)]
    groups = ["g1", "g2", "g3"]
    terms = []
    for _ in range(n_terms):
        monomial = tuple(
            sorted(
                draw(
                    st.lists(
                        st.sampled_from(names), min_size=1, max_size=3, unique=True
                    )
                )
            )
        )
        terms.append(
            Term(
                monomial,
                float(draw(st.integers(min_value=0, max_value=9))),
                count=1,
                group=draw(st.sampled_from(groups)),
            )
        )
    monoid = draw(st.sampled_from([MAX, SUM]))
    return TensorSum(terms, monoid)


@settings(max_examples=60, deadline=None)
@given(expression=random_tensor_sums(), data=st.data())
def test_property_evaluate_equals_scan(expression, data):
    names = sorted(expression.annotation_names())
    cancelled = frozenset(
        data.draw(st.lists(st.sampled_from(names), unique=True, max_size=len(names)))
        if names
        else []
    )
    masked = expression.evaluate(cancelled)
    scanned = expression.evaluate_scan(
        {name: name not in cancelled for name in names}
    )
    assert masked == scanned


@settings(max_examples=60, deadline=None)
@given(expression=random_tensor_sums(), data=st.data())
def test_property_mapping_is_homomorphic_for_evaluation(expression, data):
    """Merging annotations then cancelling the merged name equals
    cancelling all members before merging (the φ = OR semantics)."""
    names = sorted(expression.annotation_names())
    if len(names) < 2:
        return
    pair = data.draw(st.permutations(names)).__iter__()
    first, second = next(pair), next(pair)
    mapped = expression.apply_mapping({first: "merged", second: "merged"})
    both_cancelled = expression.evaluate(frozenset({first, second}))
    merged_cancelled = mapped.evaluate(frozenset({"merged"}))

    def finalized(vector):
        return {key: value.finalized_value() for key, value in vector.items()}

    assert finalized(both_cancelled) == finalized(merged_cancelled)


@settings(max_examples=60, deadline=None)
@given(expression=random_tensor_sums(), data=st.data())
def test_property_mapping_never_grows_size(expression, data):
    names = sorted(expression.annotation_names())
    if len(names) < 2:
        return
    chosen = data.draw(
        st.lists(st.sampled_from(names), min_size=2, max_size=4, unique=True)
    )
    mapped = expression.apply_mapping({name: "merged" for name in chosen})
    assert mapped.size() <= expression.size()
