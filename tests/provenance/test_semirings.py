"""Semiring axioms and folds, including property-based checks."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.provenance import BOOLEAN, NATURALS, REALS, TROPICAL

booleans = st.booleans()
naturals = st.integers(min_value=0, max_value=1000)
tropicals = st.one_of(
    st.just(math.inf), st.integers(min_value=0, max_value=100).map(float)
)


@pytest.mark.parametrize(
    "semiring,elements",
    [
        (BOOLEAN, (False, True)),
        (NATURALS, (0, 1, 2, 7)),
        (TROPICAL, (0.0, 3.0, math.inf)),
        (REALS, (0.0, 1.0, -2.5)),
    ],
)
def test_identities(semiring, elements):
    for element in elements:
        assert semiring.satisfies_identity(element)


@given(a=booleans, b=booleans, c=booleans)
def test_boolean_axioms(a, b, c):
    assert BOOLEAN.satisfies_commutativity(a, b)
    assert BOOLEAN.satisfies_associativity(a, b, c)
    assert BOOLEAN.satisfies_distributivity(a, b, c)


@given(a=naturals, b=naturals, c=naturals)
def test_naturals_axioms(a, b, c):
    assert NATURALS.satisfies_commutativity(a, b)
    assert NATURALS.satisfies_associativity(a, b, c)
    assert NATURALS.satisfies_distributivity(a, b, c)


@given(a=tropicals, b=tropicals, c=tropicals)
def test_tropical_axioms(a, b, c):
    assert TROPICAL.satisfies_commutativity(a, b)
    assert TROPICAL.satisfies_associativity(a, b, c)
    assert TROPICAL.satisfies_distributivity(a, b, c)


def test_tropical_interpretation():
    # min chooses the cheapest execution, + accumulates costs.
    assert TROPICAL.plus(3.0, 5.0) == 3.0
    assert TROPICAL.times(3.0, 5.0) == 8.0
    assert TROPICAL.zero == math.inf
    assert TROPICAL.one == 0.0
    assert TROPICAL.times(4.0, TROPICAL.zero) == math.inf


def test_folds():
    assert NATURALS.sum([1, 2, 3]) == 6
    assert NATURALS.product([2, 3, 4]) == 24
    assert NATURALS.sum([]) == 0
    assert NATURALS.product([]) == 1
    assert BOOLEAN.sum([False, False, True]) is True
    assert BOOLEAN.product([True, False]) is False
    assert TROPICAL.sum([5.0, 2.0, 9.0]) == 2.0
    assert TROPICAL.product([5.0, 2.0]) == 7.0


def test_membership():
    assert NATURALS.is_member(3)
    assert not NATURALS.is_member(-1)
    assert not NATURALS.is_member(True)  # bools are not naturals here
    assert BOOLEAN.is_member(True)
    assert not BOOLEAN.is_member(1)
    assert TROPICAL.is_member(math.inf)
    assert not TROPICAL.is_member(-3)
    assert REALS.is_member(2.5)
    assert not REALS.is_member(math.inf)
