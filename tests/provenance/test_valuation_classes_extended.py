"""CancelSubsets and probability-weighted valuation classes."""

import math

import pytest

from repro.provenance import (
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    CancelSubsets,
    bernoulli_weighted,
)


@pytest.fixture
def universe():
    universe = AnnotationUniverse()
    for index in range(4):
        universe.register(Annotation(f"u{index}", "user", {}))
    universe.register(Annotation("m", "movie", {}))
    return universe


class TestCancelSubsets:
    def test_counts(self, universe):
        singles = CancelSubsets(universe, max_cancelled=1, domains=("user",))
        assert len(singles) == 4
        pairs = CancelSubsets(universe, max_cancelled=2, domains=("user",))
        assert len(pairs) == 4 + 6
        triples = CancelSubsets(universe, max_cancelled=3, domains=("user",))
        assert len(triples) == 4 + 6 + 4

    def test_max_one_equals_cancel_single(self, universe):
        subsets = {v.false_set() for v in CancelSubsets(universe, 1, ("user",))}
        singles = {
            v.false_set() for v in CancelSingleAnnotation(universe, ("user",))
        }
        assert subsets == singles

    def test_domain_filter_and_validation(self, universe):
        all_domains = CancelSubsets(universe, max_cancelled=1)
        assert len(all_domains) == 5
        with pytest.raises(ValueError):
            CancelSubsets(universe, max_cancelled=0)


class TestBernoulliWeights:
    def test_weights_scale_with_cancellation_count(self, universe):
        weighted = bernoulli_weighted(
            CancelSubsets(universe, max_cancelled=2, domains=("user",)), 0.1
        )
        for valuation in weighted:
            cancelled = len(valuation.false_set())
            assert valuation.weight == pytest.approx(0.1 ** cancelled)

    def test_total_weight(self, universe):
        weighted = bernoulli_weighted(
            CancelSubsets(universe, max_cancelled=1, domains=("user",)), 0.5
        )
        assert weighted.total_weight() == pytest.approx(4 * 0.5)

    def test_validation(self, universe):
        valuations = CancelSubsets(universe, 1, ("user",))
        with pytest.raises(ValueError):
            bernoulli_weighted(valuations, 0.0)
        with pytest.raises(ValueError):
            bernoulli_weighted(valuations, 1.5)
