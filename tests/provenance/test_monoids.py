"""Aggregation monoids and counted aggregates."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.provenance import (
    COUNT,
    MAX,
    MIN,
    SUM,
    CountedAggregate,
    fold_counted,
    monoid_by_name,
)

values = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


@pytest.mark.parametrize("monoid", [SUM, MAX, MIN, COUNT])
@given(a=values, b=values, c=values)
def test_monoid_axioms(monoid, a, b, c):
    assert monoid.combine(a, b) == monoid.combine(b, a)
    assert monoid.combine(monoid.combine(a, b), c) == pytest.approx(
        monoid.combine(a, monoid.combine(b, c))
    )
    assert monoid.combine(a, monoid.identity) == a


def test_fold():
    assert SUM.fold([1, 2, 3]) == 6
    assert MAX.fold([3, 5, 3]) == 5
    assert MIN.fold([3, 5, 3]) == 3
    assert SUM.fold([]) == 0.0
    assert MAX.fold([]) == -math.inf


def test_lookup_by_name():
    assert monoid_by_name("max") is MAX
    assert monoid_by_name("SUM") is SUM
    with pytest.raises(KeyError, match="unknown aggregation monoid"):
        monoid_by_name("median")


class TestCountedAggregate:
    def test_combine_max(self):
        # Example 3.1.1: (3,1) and (5,1) combine to (5,2) under MAX.
        merged = CountedAggregate(3, 1).combine(CountedAggregate(5, 1), MAX)
        assert merged == CountedAggregate(5, 2)

    def test_combine_sum(self):
        merged = CountedAggregate(3, 2).combine(CountedAggregate(4, 1), SUM)
        assert merged == CountedAggregate(7, 3)

    def test_finalized_value(self):
        assert CountedAggregate(4.0, 2).finalized_value() == 4.0
        # Empty MAX aggregation displays as 0 (Figure 7.10's cancelled movie).
        assert CountedAggregate(MAX.identity, 0).finalized_value() == 0.0
        assert CountedAggregate(MIN.identity, 0).finalized_value() == 0.0
        assert CountedAggregate(-math.inf, 3).finalized_value(empty_value=-1) == -1

    def test_fold_counted(self):
        pairs = [CountedAggregate(3, 1), CountedAggregate(5, 1), CountedAggregate(3, 1)]
        assert fold_counted(pairs, MAX) == CountedAggregate(5, 3)
        assert fold_counted([], SUM) == CountedAggregate(0.0, 0)
        custom_empty = CountedAggregate(-1.0, 0)
        assert fold_counted([], MAX, empty=custom_empty) == custom_empty
