"""Annotations, attribute maps and the universe registry."""

import pytest

from repro.provenance import Annotation, AnnotationUniverse


def make(name="U1", domain="user", **attributes):
    return Annotation(name, domain, attributes)


class TestAnnotation:
    def test_base_members_is_self(self):
        annotation = make()
        assert not annotation.is_summary
        assert annotation.base_members() == frozenset({"U1"})

    def test_attributes_frozen_and_hashable(self):
        annotation = make(gender="F", age="25-34")
        assert annotation.attributes["gender"] == "F"
        assert hash(annotation) == hash(make(gender="F", age="25-34"))
        with pytest.raises(TypeError):
            annotation.attributes["gender"] = "M"  # type: ignore[index]

    def test_shared_attributes(self):
        first = make(gender="F", age="25-34", zip="10001")
        second = Annotation("U2", "user", {"gender": "F", "age": "18-24", "zip": "10001"})
        assert first.shared_attributes(second) == {"gender": "F", "zip": "10001"}

    def test_equality_includes_attributes(self):
        assert make(gender="F") != make(gender="M")
        assert make(gender="F") == make(gender="F")


class TestUniverse:
    def test_register_and_lookup(self):
        universe = AnnotationUniverse([make()])
        assert "U1" in universe
        assert universe["U1"].domain == "user"
        assert universe.get("missing") is None
        with pytest.raises(KeyError, match="unknown annotation"):
            universe["missing"]

    def test_idempotent_reregistration(self):
        universe = AnnotationUniverse()
        universe.register(make(gender="F"))
        universe.register(make(gender="F"))
        assert len(universe) == 1

    def test_collision_rejected(self):
        universe = AnnotationUniverse([make(gender="F")])
        with pytest.raises(ValueError, match="collision"):
            universe.register(make(gender="M"))

    def test_in_domain(self):
        universe = AnnotationUniverse(
            [make(), Annotation("M1", "movie"), Annotation("U2", "user")]
        )
        assert [a.name for a in universe.in_domain("user")] == ["U1", "U2"]

    def test_new_summary(self):
        universe = AnnotationUniverse(
            [
                make("U1", gender="F", age="25-34"),
                make("U2", gender="F", age="18-24"),
            ]
        )
        summary = universe.new_summary(
            [universe["U1"], universe["U2"]], label="Gender=F"
        )
        assert summary.is_summary
        assert summary.base_members() == frozenset({"U1", "U2"})
        # Attributes intersect: only the shared gender survives.
        assert dict(summary.attributes) == {"gender": "F"}
        assert summary.name.startswith("Gender=F#")
        assert summary.name in universe

    def test_summary_of_summary_accumulates_members(self):
        universe = AnnotationUniverse(
            [make("U1", g="x"), make("U2", g="x"), make("U3", g="x")]
        )
        first = universe.new_summary([universe["U1"], universe["U2"]], label="g")
        second = universe.new_summary([first, universe["U3"]], label="g")
        assert second.base_members() == frozenset({"U1", "U2", "U3"})

    def test_summary_rejects_cross_domain_and_singletons(self):
        universe = AnnotationUniverse([make("U1"), Annotation("M1", "movie")])
        with pytest.raises(ValueError, match="different domains"):
            universe.new_summary([universe["U1"], universe["M1"]])
        with pytest.raises(ValueError, match="at least 2"):
            universe.new_summary([universe["U1"]])

    def test_attribute_queries(self):
        universe = AnnotationUniverse(
            [
                make("U1", gender="F"),
                make("U2", gender="M"),
                make("U3", gender="F"),
            ]
        )
        assert universe.attribute_values("gender") == ("F", "M")
        assert [a.name for a in universe.with_attribute("gender", "F")] == ["U1", "U3"]
        assert universe.attribute_names() == ("gender",)
        # Summaries are excluded from attribute queries.
        universe.new_summary([universe["U1"], universe["U3"]], label="Gender=F")
        assert len(universe.with_attribute("gender", "F")) == 2
