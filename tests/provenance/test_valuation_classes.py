"""Valuation classes of Table 5.1."""

import random

import pytest

from repro.provenance import (
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    CancelSingleAttribute,
    ExplicitValuations,
    TaxonomyConsistent,
    cancel,
)


@pytest.fixture
def universe():
    universe = AnnotationUniverse()
    universe.register(Annotation("U1", "user", {"gender": "F"}))
    universe.register(Annotation("U2", "user", {"gender": "M"}))
    universe.register(Annotation("U3", "user", {"gender": "F"}))
    universe.register(Annotation("M1", "movie", {"genre": "drama"}))
    return universe


class TestCancelSingleAnnotation:
    def test_one_valuation_per_annotation(self, universe):
        valuations = CancelSingleAnnotation(universe)
        assert len(valuations) == 4
        cancelled = [valuation.false_set() for valuation in valuations]
        assert frozenset({"U1"}) in cancelled
        assert frozenset({"M1"}) in cancelled

    def test_domain_restriction(self, universe):
        valuations = CancelSingleAnnotation(universe, domains=("user",))
        assert len(valuations) == 3

    def test_summaries_excluded(self, universe):
        universe.new_summary([universe["U1"], universe["U3"]], label="Gender=F")
        valuations = CancelSingleAnnotation(universe, domains=("user",))
        assert len(valuations) == 3


class TestCancelSingleAttribute:
    def test_cancels_value_groups(self, universe):
        valuations = CancelSingleAttribute(universe, attributes=("gender",))
        by_label = {valuation.label: valuation.false_set() for valuation in valuations}
        assert by_label["cancel gender=F"] == frozenset({"U1", "U3"})
        assert by_label["cancel gender=M"] == frozenset({"U2"})

    def test_all_attributes_by_default(self, universe):
        valuations = CancelSingleAttribute(universe)
        labels = {valuation.label for valuation in valuations}
        assert "cancel genre=drama" in labels
        assert "cancel gender=F" in labels

    def test_domain_filter(self, universe):
        valuations = CancelSingleAttribute(
            universe, attributes=("gender", "genre"), domains=("user",)
        )
        labels = {valuation.label for valuation in valuations}
        assert "cancel genre=drama" not in labels


class TestExplicit:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one valuation"):
            ExplicitValuations([])

    def test_sample_deterministic(self):
        valuations = ExplicitValuations([cancel(["a"]), cancel(["b"]), cancel(["c"])])
        rng = random.Random(5)
        first = [valuations.sample(rng).label for _ in range(4)]
        rng = random.Random(5)
        second = [valuations.sample(rng).label for _ in range(4)]
        assert first == second

    def test_total_weight(self):
        valuations = ExplicitValuations(
            [cancel(["a"], weight=2.0), cancel(["b"], weight=3.0)]
        )
        assert valuations.total_weight() == 5.0


class TestTaxonomyConsistent:
    def setup_method(self):
        # singer, guitarist ⊑ musician.  Pages: A (singer), B (guitarist).
        self.parent = {"musician": None, "singer": "musician", "guitarist": "musician"}
        self.concepts = {
            "A": ("singer", "musician"),
            "B": ("guitarist", "musician"),
        }

    def test_inconsistent_valuation_dropped(self):
        # Cancelling every page under "musician"'s child "singer" while
        # keeping B true is fine; cancelling all "musician" carriers but
        # keeping a singer carrier true is impossible here, so build an
        # explicitly inconsistent one: cancel all carriers of the parent
        # concept (A and B are both carriers of musician) minus a child.
        inconsistent = cancel(["A"])  # A is the only singer carrier:
        # singer becomes false, musician stays true -> consistent.
        consistent_class = TaxonomyConsistent(
            ExplicitValuations([inconsistent]), self.concepts, self.parent
        )
        assert len(consistent_class) == 1

        # Make "musician" false (cancel A and B) while "singer" would
        # need A cancelled too -- it is, so still consistent:
        both = cancel(["A", "B"])
        assert TaxonomyConsistent(
            ExplicitValuations([both]), self.concepts, self.parent
        ).is_consistent(both)

    def test_child_true_parent_false_is_inconsistent(self):
        concepts = {
            "A": ("singer", "musician"),
            "B": ("musician",),
        }
        # Cancelling B makes "musician" false?  No: A also carries
        # musician.  Cancel nothing -> consistent.  To get inconsistency
        # we need all musician carriers cancelled but a singer carrier
        # alive -- impossible since singer carriers carry musician.
        # Inconsistency therefore arises with disjoint carrier sets:
        concepts = {"A": ("singer",), "B": ("musician",)}
        parent = {"musician": None, "singer": "musician"}
        bad = cancel(["B"])  # musician false, singer (child) still true
        valuations = ExplicitValuations([bad, cancel(["A"])])
        filtered = TaxonomyConsistent(valuations, concepts, parent)
        assert len(filtered) == 1
        assert not filtered.is_consistent(bad)

    def test_all_filtered_raises(self):
        concepts = {"A": ("singer",), "B": ("musician",)}
        parent = {"musician": None, "singer": "musician"}
        with pytest.raises(ValueError, match="no taxonomy-consistent"):
            TaxonomyConsistent(
                ExplicitValuations([cancel(["B"])]), concepts, parent
            )

    def test_sampling(self):
        valuations = TaxonomyConsistent(
            ExplicitValuations([cancel(["A"]), cancel(["B"])]),
            self.concepts,
            self.parent,
        )
        assert valuations.sample(random.Random(0)).label in {
            "cancel {A}",
            "cancel {B}",
        }
