"""The general N[Ann] AST: simplification, truth, flattening."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.provenance import (
    MAX,
    ONE,
    SUM,
    ZERO,
    AggSum,
    Comparison,
    CountedAggregate,
    Product,
    Sum,
    Tensor,
    Var,
)


class TestSimplify:
    def test_zero_one_laws(self):
        x = Var("x")
        assert (x + ZERO) == x
        assert (x * ONE) == x
        assert (x * ZERO) == ZERO
        assert Sum([ZERO, ZERO]).simplify() == ZERO
        assert Product([ONE, ONE]).simplify() == ONE

    def test_flattening(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        nested = Sum([Sum([x, y]), z]).simplify()
        assert nested == Sum([x, y, z])
        nested = Product([Product([x, y]), z]).simplify()
        assert nested == Product([x, y, z])

    def test_comparison_constant_folding(self):
        # [1 ⊗ 5 > 2] ≡ 1 and [0 ⊗ 5 > 2] ≡ 0 (Example 3.1.1's setup).
        assert Comparison(ONE, 5, ">", 2).simplify() == ONE
        assert Comparison(ZERO, 5, ">", 2).simplify() == ZERO
        assert Comparison(ONE, 1, ">", 2).simplify() == ZERO
        live = Comparison(Var("s"), 5, ">", 2)
        assert live.simplify() == live

    def test_invalid_operator(self):
        with pytest.raises(ValueError, match="unsupported comparison"):
            Comparison(Var("s"), 5, "~", 2)


class TestTruth:
    def test_sum_is_disjunction_product_is_conjunction(self):
        expr = Var("a") * Var("b") + Var("c")
        assert expr.truth({"a": True, "b": True, "c": False})
        assert not expr.truth({"a": True, "b": False, "c": False})
        assert expr.truth({"a": False, "b": False, "c": True})

    def test_unmapped_annotations_default_true(self):
        assert Var("a").truth({})

    def test_comparison_truth(self):
        guard = Comparison(Var("s") * Var("u"), 5, ">", 2)
        assert guard.truth({})
        assert not guard.truth({"s": False})
        equality = Comparison(Var("d"), 1, "==", 0)
        assert not equality.truth({})
        assert equality.truth({"d": False})

    @given(st.dictionaries(st.sampled_from("abc"), st.booleans()))
    def test_simplify_preserves_truth(self, assignment):
        expr = Sum(
            [
                Product([Var("a"), Var("b"), ONE]),
                Product([Var("c"), ZERO]),
                Var("c"),
            ]
        )
        assert expr.truth(assignment) == expr.simplify().truth(assignment)


class TestStructure:
    def test_size_counts_occurrences(self):
        expr = Var("a") * Var("b") + Var("a")
        assert expr.size() == 3
        guard = Comparison(Var("s") * Var("u"), 5, ">", 2)
        assert (Var("u") * guard).size() == 3

    def test_rename(self):
        expr = (Var("a") * Var("b")).rename({"a": "c"})
        assert expr.annotation_names() == frozenset({"b", "c"})

    def test_str_round_trip_shapes(self):
        expr = Var("U1") * Comparison(Var("S1") * Var("U1"), 5, ">", 2)
        assert str(expr) == "U1 · [S1 · U1 ⊗ 5 > 2]"


class TestAggSum:
    def test_simplify_merges_congruent_tensors(self):
        # k ⊗ m1 ⊕ k ⊗ m2 ≡ k ⊗ (m1 ⊕ m2)
        agg = AggSum(
            [Tensor(Var("F"), 3, 1, "MP"), Tensor(Var("F"), 5, 1, "MP")], MAX
        ).simplify()
        assert len(agg.tensors) == 1
        assert agg.tensors[0].value == 5
        assert agg.tensors[0].count == 2

    def test_simplify_drops_zero_tensors(self):
        agg = AggSum([Tensor(ZERO, 3, 1, "MP"), Tensor(Var("a"), 4, 1, "MP")], MAX)
        assert len(agg.simplify().tensors) == 1

    def test_groups_stay_separate(self):
        agg = AggSum(
            [Tensor(Var("F"), 3, 1, "MP"), Tensor(Var("F"), 4, 1, "BJ")], MAX
        ).simplify()
        assert len(agg.tensors) == 2

    def test_evaluate(self):
        agg = AggSum(
            [
                Tensor(Var("U1"), 3, 1, "MP"),
                Tensor(Var("U2"), 5, 1, "MP"),
                Tensor(Var("U2"), 4, 1, "BJ"),
            ],
            MAX,
        )
        result = agg.evaluate({"U2": False})
        assert result["MP"] == CountedAggregate(3, 1)
        assert "BJ" not in result

    def test_to_tensor_sum_flattens_products_and_guards(self):
        guard = Comparison(Var("S1") * Var("U1"), 5, ">", 2)
        agg = AggSum([Tensor(Var("U1") * guard, 3, 1, "MP")], MAX)
        flat = agg.to_tensor_sum()
        assert flat.size() == 3  # U1 + guard's S1·U1
        term = flat.terms[0]
        assert term.annotations == ("U1",)
        assert term.guards[0].annotations == ("S1", "U1")

    def test_to_tensor_sum_distributes_sums(self):
        agg = AggSum([Tensor(Var("a") + Var("b"), 2, 1, "g")], SUM)
        flat = agg.to_tensor_sum()
        assert len(flat.terms) == 2
        assert {term.annotations for term in flat.terms} == {("a",), ("b",)}

    def test_rename_and_size(self):
        agg = AggSum([Tensor(Var("a") * Var("b"), 2, 1, "g")], SUM)
        assert agg.size() == 2
        renamed = agg.rename({"a": "c"})
        assert renamed.annotation_names() == frozenset({"b", "c"})
