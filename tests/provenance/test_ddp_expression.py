"""DDP provenance over the tropical semiring (Example 5.2.2)."""

import math

import pytest

from repro.provenance import (
    CostTransition,
    DBTransition,
    DDPExpression,
    DDPResult,
    Execution,
    Valuation,
)


@pytest.fixture
def thesis_ddp():
    """⟨c1,1⟩·⟨0,[d1·d2]≠0⟩ + ⟨0,[d2·d3]=0⟩·⟨c2,1⟩ (Example 5.2.2)."""
    return DDPExpression(
        [
            Execution(
                [CostTransition("c1", 4.0), DBTransition(("d1", "d2"), "!=")]
            ),
            Execution(
                [DBTransition(("d2", "d3"), "=="), CostTransition("c2", 6.0)]
            ),
        ]
    )


class TestEvaluation:
    def test_all_true(self, thesis_ddp):
        # d2·d3 ≠ 0 so the == guard fails; only execution 1 is feasible.
        result = thesis_ddp.evaluate(frozenset())
        assert result == DDPResult(4.0, True)

    def test_thesis_valuation(self, thesis_ddp):
        # Example 5.2.2's valuation: c1,c2 → 0, all db vars true.
        valuation = Valuation({"c1": 0.0, "c2": 0.0})
        result = thesis_ddp.evaluate_valuation(valuation)
        assert result == DDPResult(0.0, True)

    def test_guard_failure_infeasible(self, thesis_ddp):
        # d1 false kills execution 1; d2·d3 still non-zero kills 2.
        result = thesis_ddp.evaluate(frozenset({"d1"}))
        assert not result.feasible
        assert math.isinf(result.cost)

    def test_equality_guard_enables_execution(self, thesis_ddp):
        # Cancelling d3 makes [d2·d3] == 0 hold: execution 2 is feasible.
        result = thesis_ddp.evaluate(frozenset({"d1", "d3"}))
        assert result == DDPResult(6.0, True)

    def test_min_over_feasible_executions(self):
        expression = DDPExpression(
            [
                Execution([CostTransition("c1", 7.0)]),
                Execution([CostTransition("c2", 3.0)]),
            ]
        )
        assert expression.evaluate(frozenset()) == DDPResult(3.0, True)
        # Cancelling c2's effort gives a free execution.
        assert expression.evaluate(frozenset({"c2"})) == DDPResult(0.0, True)

    def test_scan_matches_masked(self, thesis_ddp):
        names = sorted(thesis_ddp.annotation_names())
        for mask in range(2 ** len(names)):
            cancelled = frozenset(
                name for bit, name in enumerate(names) if mask >> bit & 1
            )
            truth = {name: name not in cancelled for name in names}
            assert thesis_ddp.evaluate(cancelled) == thesis_ddp.evaluate_scan(truth)


class TestStructure:
    def test_size_counts_variable_occurrences(self, thesis_ddp):
        assert thesis_ddp.size() == 6  # c1, d1, d2 + d2, d3, c2

    def test_annotation_names(self, thesis_ddp):
        assert thesis_ddp.annotation_names() == frozenset(
            {"c1", "c2", "d1", "d2", "d3"}
        )

    def test_mapping_and_dedup(self):
        """Mapping equal-structure executions onto each other collapses
        them, shrinking the provenance (the worked summary of §5.2)."""
        expression = DDPExpression(
            [
                Execution(
                    [CostTransition("c1", 4.0), DBTransition(("d1", "d2"), "!=")]
                ),
                Execution(
                    [DBTransition(("d2", "d3"), "!="), CostTransition("c2", 4.0)]
                ),
            ]
        )
        summary = expression.apply_mapping(
            {"d1": "D1", "d3": "D1", "c1": "C1", "c2": "C1"}
        )
        assert len(summary) == 1
        assert summary.size() == 3
        assert summary.annotation_names() == frozenset({"C1", "D1", "d2"})

    def test_dedup_requires_equal_ops(self):
        expression = DDPExpression(
            [
                Execution([DBTransition(("d1", "d2"), "!=")]),
                Execution([DBTransition(("d1", "d2"), "==")]),
            ]
        )
        assert len(expression) == 2

    def test_invalid_guard_op(self):
        with pytest.raises(ValueError, match="'!=' or '=='"):
            DBTransition(("d1",), ">")

    def test_str(self, thesis_ddp):
        text = str(thesis_ddp)
        assert "⟨c1:4, 1⟩" in text
        assert "[d2 · d3] == 0" in text
