"""Differential proof obligations for the interned provenance IR.

The IR (:mod:`repro.provenance.ir`) must be *unobservable* through the
``Polynomial`` API: over an explicit RNG grid of randomly built
polynomial expressions, every operation (add, mul, rename, size,
degree, coefficient, evaluate_in) must agree between the default
``ir`` mode and the ``REPRO_IR=legacy`` dict representation -- exact
semirings only, so agreement is equality, not approximation.

Also covered: the interner/arena invariants (dense stable ids,
memoized products, lazily-extended rename tables), the
annotation-names cache regression from the PR (rename must never
mutate the receiver's cached name set), and the format-version-2
serialization round-trips for term stores and polynomials.
"""

import random

import pytest

from repro import serialization
from repro.provenance import ir
from repro.provenance.ir import AnnotationInterner, TermStore
from repro.provenance.polynomial import Polynomial
from repro.provenance.semirings import BOOLEAN, NATURALS
from repro.serialization import SerializationError

NAMES = ["a", "b", "c", "d", "e"]


# -- random polynomial programs ----------------------------------------------------


def random_polynomial(rng, depth=4):
    """A random N[Ann] value built by a deterministic op sequence.

    Replaying the same ``rng`` seed under a different ``REPRO_IR`` mode
    performs the *same* constructions, so the two results must be equal
    as polynomials.
    """
    choice = rng.random()
    if depth == 0 or choice < 0.35:
        kind = rng.random()
        if kind < 0.6:
            return Polynomial.variable(rng.choice(NAMES))
        if kind < 0.8:
            return Polynomial.constant(rng.randint(0, 3))
        return Polynomial(
            {
                tuple(
                    sorted(
                        (name, rng.randint(1, 2))
                        for name in rng.sample(NAMES, rng.randint(1, 3))
                    )
                ): rng.randint(1, 4)
            }
        )
    left = random_polynomial(rng, depth - 1)
    right = random_polynomial(rng, depth - 1)
    if choice < 0.65:
        return left + right
    if choice < 0.9:
        return left * right
    mapping = {name: rng.choice(NAMES + ["m0", "m1"]) for name in rng.sample(NAMES, 2)}
    return (left + right).rename(mapping)


def build_in_mode(temporary_mode, seed):
    with ir.mode(temporary_mode):
        return random_polynomial(random.Random(seed))


@pytest.mark.parametrize("seed", range(12))
def test_ir_vs_legacy_same_terms(seed):
    built_ir = build_in_mode(ir.MODE_IR, seed)
    built_legacy = build_in_mode(ir.MODE_LEGACY, seed)
    assert built_ir.terms() == built_legacy.terms()
    assert built_ir == built_legacy
    assert hash(built_ir) == hash(built_legacy)
    assert built_ir.size() == built_legacy.size()
    assert built_ir.degree() == built_legacy.degree()
    assert built_ir.annotation_names() == built_legacy.annotation_names()
    assert str(built_ir) == str(built_legacy)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize(
    "semiring,values",
    [
        (BOOLEAN, (True, False)),
        (NATURALS, (0, 1, 2, 3)),
    ],
    ids=("boolean", "naturals"),
)
def test_ir_vs_legacy_evaluate_in(seed, semiring, values):
    """The universal property holds identically in both modes."""
    built_ir = build_in_mode(ir.MODE_IR, seed)
    built_legacy = build_in_mode(ir.MODE_LEGACY, seed)
    rng = random.Random(seed * 31 + 7)
    names = sorted(built_ir.annotation_names() | built_legacy.annotation_names())
    for _ in range(5):
        valuation = {name: rng.choice(values) for name in names}
        assert built_ir.evaluate_in(semiring, valuation) == built_legacy.evaluate_in(
            semiring, valuation
        )


@pytest.mark.parametrize("seed", range(8))
def test_ir_vs_legacy_coefficient_lookup(seed):
    built_ir = build_in_mode(ir.MODE_IR, seed)
    built_legacy = build_in_mode(ir.MODE_LEGACY, seed)
    for monomial in built_legacy.terms():
        names = [name for name, exponent in monomial for _ in range(exponent)]
        assert built_ir.coefficient(names) == built_legacy.coefficient(names)
    # Unknown names return 0 without growing the interner.
    before = len(ir.GLOBAL_STORE.interner)
    assert built_ir.coefficient(["never-interned-name"]) == 0
    assert len(ir.GLOBAL_STORE.interner) == before


@pytest.mark.parametrize("seed", range(10))
def test_rename_composition_matches_sequential(seed):
    """h2 ∘ h1 as one mapping ≡ rename(h1) then rename(h2), both modes."""
    rng = random.Random(seed)
    h1 = {name: rng.choice(["m0", "m1", name]) for name in NAMES}
    h2 = {"m0": "s", "m1": "s", "a": "s2"}

    def composed(name):
        step = h1.get(name, name)
        return h2.get(step, step)

    for temporary_mode in (ir.MODE_IR, ir.MODE_LEGACY):
        with ir.mode(temporary_mode):
            poly = random_polynomial(random.Random(seed))
            sequential = poly.rename(h1).rename(h2)
            one_shot = poly.rename(
                {name: composed(name) for name in NAMES + ["m0", "m1"]}
            )
            assert sequential == one_shot, temporary_mode
            assert sequential.terms() == one_shot.terms(), temporary_mode


def test_cross_mode_arithmetic_degrades_gracefully():
    """A legacy-built polynomial mixes with an IR-built one via terms."""
    with ir.mode(ir.MODE_LEGACY):
        legacy = Polynomial.variable("a") * Polynomial.constant(2)
    with ir.mode(ir.MODE_IR):
        interned = Polynomial.variable("b") + Polynomial.one()
    mixed = legacy + interned
    assert mixed.terms() == {
        (("a", 1),): 2,
        (("b", 1),): 1,
        (): 1,
    }
    product = legacy * interned
    assert product.terms() == {
        (("a", 1), ("b", 1)): 2,
        (("a", 1),): 2,
    }


# -- interner / arena invariants ---------------------------------------------------


def test_interner_ids_are_dense_and_stable():
    interner = AnnotationInterner()
    ids = [interner.intern(name) for name in ("x", "y", "x", "z", "y")]
    assert ids == [0, 1, 0, 2, 1]
    assert list(interner) == ["x", "y", "z"]
    assert interner.name_of(2) == "z"
    assert interner.names_of((2, 0)) == ("z", "x")
    assert len(interner) == 3
    assert "y" in interner and "w" not in interner


def test_interner_lookup_never_allocates():
    interner = AnnotationInterner(["x"])
    assert interner.lookup("x") == 0
    assert interner.lookup("missing") is None
    assert len(interner) == 1


def test_term_store_interns_monomials_once():
    store = TermStore()
    first = store.mono_from_name_pairs((("b", 2), ("a", 1)))
    second = store.mono_from_name_pairs((("a", 1), ("b", 2)))
    assert first == second
    assert store.mono_name_pairs(first) == (("a", 1), ("b", 2))
    assert store.mono_size(first) == 3
    assert store.n_monomials() == 2  # the empty monomial plus this one


def test_mono_product_identity_and_memo():
    store = TermStore()
    ab = store.mono_from_name_pairs((("a", 1), ("b", 1)))
    c = store.mono_from_name_pairs((("c", 1),))
    assert store.mono_product(0, ab) == ab
    assert store.mono_product(ab, 0) == ab
    product = store.mono_product(ab, c)
    assert store.mono_name_pairs(product) == (("a", 1), ("b", 1), ("c", 1))
    # Commutes through the memo: the symmetric call is the same id.
    assert store.mono_product(c, ab) == product
    squared = store.mono_product(ab, ab)
    assert store.mono_name_pairs(squared) == (("a", 2), ("b", 2))


def test_rename_table_extends_after_interner_growth():
    store = TermStore()
    a = store.mono_from_name_pairs((("a", 1),))
    table = store.rename_table({"a": "merged", "late": "merged"})
    renamed_a = store.rename_mono(a, table)
    assert store.mono_name_pairs(renamed_a) == (("merged", 1),)
    # A name interned *after* the table was compiled must still remap.
    late = store.mono_from_name_pairs((("late", 1),))
    table_again = store.rename_table({"a": "merged", "late": "merged"})
    assert table_again is table  # cached per mapping
    assert store.mono_name_pairs(store.rename_mono(late, table_again)) == (
        ("merged", 1),
    )


def test_rename_merges_colliding_monomials():
    with ir.mode(ir.MODE_IR):
        poly = Polynomial.variable("a") + Polynomial.variable("b")
        merged = poly.rename({"a": "s", "b": "s"})
        assert merged.terms() == {(("s", 1),): 2}
        assert merged.size() == 2


def test_store_stats_report_growth():
    store = TermStore()
    baseline = store.stats()
    assert baseline["monomials"] == 1
    store.mono_from_name_pairs((("a", 1), ("b", 3)))
    grown = store.stats()
    assert grown["interned_annotations"] == 2
    assert grown["monomials"] == 2
    assert grown["arena_bytes"] > baseline["arena_bytes"]


# -- the annotation-names cache (PR regression) ------------------------------------


@pytest.mark.parametrize("temporary_mode", (ir.MODE_IR, ir.MODE_LEGACY))
def test_rename_does_not_mutate_cached_annotation_names(temporary_mode):
    """``annotation_names`` is cached per instance; renaming must hand
    back a *new* polynomial with its own (correct) name set and leave
    the receiver's cache untouched."""
    with ir.mode(temporary_mode):
        poly = Polynomial.variable("a") * Polynomial.variable("b")
        before = poly.annotation_names()
        assert before == frozenset({"a", "b"})
        renamed = poly.rename({"a": "s", "b": "s"})
        assert renamed.annotation_names() == frozenset({"s"})
        # The receiver's cached set is the same object, unchanged.
        assert poly.annotation_names() is before
        assert poly.annotation_names() == frozenset({"a", "b"})
        # And the cache is per instance, never shared with the result.
        assert renamed.annotation_names() is not before


@pytest.mark.parametrize("temporary_mode", (ir.MODE_IR, ir.MODE_LEGACY))
def test_annotation_names_cache_is_consistent_after_arithmetic(temporary_mode):
    with ir.mode(temporary_mode):
        left = Polynomial.variable("a")
        right = Polynomial.variable("b")
        assert left.annotation_names() == frozenset({"a"})
        total = left + right
        assert total.annotation_names() == frozenset({"a", "b"})
        assert left.annotation_names() == frozenset({"a"})
        assert right.annotation_names() == frozenset({"b"})


# -- mode plumbing -----------------------------------------------------------------


def test_mode_contextmanager_restores_previous_mode():
    previous = ir.active_mode()
    with ir.mode(ir.MODE_LEGACY):
        assert ir.active_mode() == ir.MODE_LEGACY
        assert not ir.ir_enabled()
    assert ir.active_mode() == previous


def test_set_mode_rejects_unknown_modes():
    with pytest.raises(ValueError, match="mode must be"):
        ir.set_mode("mystery")


def test_instances_capture_their_construction_mode():
    with ir.mode(ir.MODE_IR):
        interned = Polynomial.variable("a")
    with ir.mode(ir.MODE_LEGACY):
        legacy = Polynomial.variable("a")
    assert interned.ir_data() is not None
    assert interned.ir_store() is ir.GLOBAL_STORE
    assert legacy.ir_data() is None
    assert legacy.ir_store() is None
    assert interned == legacy


# -- serialization (format version 2) ----------------------------------------------


def make_store():
    store = TermStore()
    store.mono_from_name_pairs((("a", 1),))
    store.mono_from_name_pairs((("a", 2), ("b", 1)))
    store.mono_from_name_pairs((("c", 3),))
    return store


def assert_same_arena(rebuilt, original):
    assert list(rebuilt.interner) == list(original.interner)
    assert rebuilt.n_monomials() == original.n_monomials()
    for mono in range(original.n_monomials()):
        assert rebuilt.mono_name_pairs(mono) == original.mono_name_pairs(mono)
        assert rebuilt.mono_size(mono) == original.mono_size(mono)


def test_term_store_dict_round_trip():
    store = make_store()
    payload = serialization.term_store_to_dict(store)
    assert payload["version"] == serialization.FORMAT_VERSION
    assert payload["kind"] == "term_store"
    assert_same_arena(serialization.term_store_from_dict(payload), store)


def test_term_store_bytes_round_trip():
    store = make_store()
    blob = serialization.term_store_to_bytes(store)
    assert blob.startswith(b"PROXIR")
    assert_same_arena(serialization.term_store_from_bytes(blob), store)


def test_term_store_bytes_rejects_bad_magic_and_truncation():
    store = make_store()
    blob = serialization.term_store_to_bytes(store)
    with pytest.raises(SerializationError, match="bad magic"):
        serialization.term_store_from_bytes(b"NOTPROX" + blob)
    with pytest.raises(SerializationError, match="truncated"):
        serialization.term_store_from_bytes(blob[: len(blob) - 9])


def test_term_store_dict_rejects_malformed_payloads():
    store = make_store()
    good = serialization.term_store_to_dict(store)
    with pytest.raises(SerializationError, match="expected kind"):
        serialization.term_store_from_dict({**good, "kind": "polynomial"})
    with pytest.raises(SerializationError, match="bounds must start at 0"):
        serialization.term_store_from_dict(
            {**good, "bounds": [1] + good["bounds"][1:]}
        )
    with pytest.raises(SerializationError, match="do not cover"):
        serialization.term_store_from_dict(
            {**good, "bounds": good["bounds"][:-1] + [good["bounds"][-1] + 2]}
        )
    with pytest.raises(SerializationError, match="unknown annotation id"):
        serialization.term_store_from_dict({**good, "annotations": ["a"]})
    with pytest.raises(SerializationError, match="newer than supported"):
        serialization.term_store_from_dict(
            {**good, "version": serialization.FORMAT_VERSION + 1}
        )


def test_term_store_rejects_non_canonical_arenas():
    store = make_store()
    good = serialization.term_store_to_dict(store)
    # Duplicate the first real monomial: ids can no longer be preserved.
    first_len = good["bounds"][2] - good["bounds"][1]
    duplicated = {
        **good,
        "pair_data": good["pair_data"]
        + good["pair_data"][good["bounds"][1] : good["bounds"][2]],
        "bounds": good["bounds"] + [good["bounds"][-1] + first_len],
    }
    with pytest.raises(SerializationError, match="not canonical"):
        serialization.term_store_from_dict(duplicated)


@pytest.mark.parametrize("temporary_mode", (ir.MODE_IR, ir.MODE_LEGACY))
@pytest.mark.parametrize("seed", range(6))
def test_polynomial_dict_round_trip_is_mode_independent(temporary_mode, seed):
    with ir.mode(temporary_mode):
        poly = random_polynomial(random.Random(seed))
        payload = serialization.polynomial_to_dict(poly)
        assert payload["version"] == serialization.FORMAT_VERSION
        restored = serialization.polynomial_from_dict(payload)
        assert restored == poly
        assert restored.terms() == poly.terms()
    # The payload also restores under the *other* mode.
    other = ir.MODE_LEGACY if temporary_mode == ir.MODE_IR else ir.MODE_IR
    with ir.mode(other):
        assert serialization.polynomial_from_dict(payload).terms() == poly.terms()


def test_polynomial_dict_is_json_stable():
    """Equal polynomials from either mode serialize to the same JSON."""
    with ir.mode(ir.MODE_IR):
        interned = (Polynomial.variable("a") + Polynomial.variable("b")) * (
            Polynomial.variable("b") + Polynomial.constant(2)
        )
    with ir.mode(ir.MODE_LEGACY):
        legacy = (Polynomial.variable("a") + Polynomial.variable("b")) * (
            Polynomial.variable("b") + Polynomial.constant(2)
        )
    assert serialization.dumps(
        serialization.polynomial_to_dict(interned)
    ) == serialization.dumps(serialization.polynomial_to_dict(legacy))


def test_polynomial_dict_rejects_malformed_payloads():
    payload = serialization.polynomial_to_dict(Polynomial.variable("a"))
    with pytest.raises(SerializationError, match="differ in length"):
        serialization.polynomial_from_dict({**payload, "coefficients": []})
    with pytest.raises(SerializationError, match="malformed polynomial"):
        serialization.polynomial_from_dict({**payload, "monomials": [99]})
    with pytest.raises(SerializationError, match="malformed polynomial"):
        broken = dict(payload)
        del broken["pair_data"]
        serialization.polynomial_from_dict(broken)


# -- tracing -----------------------------------------------------------------------


@pytest.fixture
def enabled_tracing():
    from repro.observability import tracing

    original = tracing.is_enabled()
    tracing.set_enabled(True)
    tracing.take_trace()
    yield tracing
    tracing.set_enabled(original)
    tracing.take_trace()


@pytest.mark.parametrize("temporary_mode", (ir.MODE_IR, ir.MODE_LEGACY))
def test_polynomial_rename_records_a_span(enabled_tracing, temporary_mode):
    tracing = enabled_tracing
    with ir.mode(temporary_mode):
        poly = Polynomial.variable("a") + Polynomial.variable("b")
        with tracing.span("root"):
            poly.rename({"a": "s"})
    root = tracing.take_trace()
    rename = root.find("rename")
    assert rename is not None
    assert rename.attributes["n_terms"] == 2


def test_rename_span_is_null_when_tracing_disabled():
    from repro.observability import tracing

    assert not tracing.is_enabled()
    renamed = Polynomial.variable("a").rename({"a": "s"})
    assert renamed.terms() == {(("s", 1),): 1}
    assert tracing.take_trace() is None


def test_publish_metrics_exports_gauges():
    from repro.observability import metrics as metrics_module

    interner = AnnotationInterner(["a", "b", "c"])
    store = TermStore()
    store.mono_from_name_pairs((("x", 1),))
    ir.publish_metrics(interner=interner, store=store)
    rendered = metrics_module.REGISTRY.render()
    assert "repro_ir_interned_annotations 3" in rendered
    assert f"repro_ir_arena_bytes {store.arena_bytes()}" in rendered
    # Restore the process-wide gauges to the global store's truth.
    ir.publish_metrics()
