"""Witnesses, counterfactuals and textual explanations."""

import pytest

from repro.provenance import MAX, MIN, SUM, TensorSum, Term
from repro.provenance.explanations import (
    counterfactual_annotations,
    explain,
    witnesses,
)


class TestWitnesses:
    def test_max_witnesses_are_argmax(self, match_point):
        terms = witnesses(match_point, "MatchPoint")
        assert [term.annotations for term in terms] == [("U2",)]

    def test_ties_all_witness(self):
        expression = TensorSum(
            [Term(("a",), 5.0, group="g"), Term(("b",), 5.0, group="g")], MAX
        )
        assert len(witnesses(expression, "g")) == 2

    def test_sum_witnesses_everything_alive(self):
        expression = TensorSum(
            [Term(("a",), 1.0, group="g"), Term(("b",), 2.0, group="g")], SUM
        )
        assert len(witnesses(expression, "g")) == 2

    def test_min_witnesses(self):
        expression = TensorSum(
            [Term(("a",), 1.0, group="g"), Term(("b",), 2.0, group="g")], MIN
        )
        assert [t.annotations for t in witnesses(expression, "g")] == [("a",)]

    def test_cancellation_shifts_witnesses(self, match_point):
        terms = witnesses(match_point, "MatchPoint", frozenset({"U2"}))
        assert {term.annotations[0] for term in terms} == {"U1", "U3"}

    def test_empty_group(self, match_point):
        assert witnesses(match_point, "Nonexistent") == []


class TestCounterfactuals:
    def test_unique_witness_is_pivotal(self, match_point):
        assert counterfactual_annotations(match_point, "MatchPoint") == frozenset(
            {"U2"}
        )

    def test_tied_witnesses_have_no_pivot(self):
        expression = TensorSum(
            [Term(("a",), 5.0, group="g"), Term(("b",), 5.0, group="g")], MAX
        )
        assert counterfactual_annotations(expression, "g") == frozenset()

    def test_shared_annotation_stays_pivotal(self):
        expression = TensorSum(
            [
                Term(("a", "x"), 5.0, group="g"),
                Term(("b", "x"), 5.0, group="g"),
            ],
            MAX,
        )
        assert counterfactual_annotations(expression, "g") == frozenset({"x"})


class TestExplain:
    def test_text_contains_the_story(self, thesis_universe, match_point):
        text = explain(match_point, "MatchPoint", thesis_universe)
        assert "MAX = 5" in text
        assert "U2" in text
        assert "gender=F" in text
        assert "would change this answer" in text

    def test_cancelled_group(self, match_point):
        text = explain(
            match_point, "MatchPoint", false_annotations=frozenset({"U1", "U2", "U3"})
        )
        assert "no surviving contributions" in text

    def test_without_universe(self, match_point):
        text = explain(match_point, "MatchPoint")
        assert "U2 ⊗ (5, 1)" in text
