"""End-to-end pipelines: workflow → provenance → summary → provisioning."""

import pytest

from repro.core import (
    DomainCombiners,
    DomainConstraints,
    EuclideanDistance,
    SharedAttribute,
    SummarizationConfig,
    SummarizationProblem,
    Summarizer,
)
from repro.db import combined_aggregate
from repro.provenance import (
    MAX,
    Annotation,
    AnnotationUniverse,
    CancelSingleAttribute,
)
from repro.workflow import Review, run_movie_workflow


def test_workflow_to_summary_pipeline():
    """The full Chapter 2 → Chapter 4 story: run the application
    workflow, take the aggregator's provenance, summarize it, and
    check that approximate provisioning stays close."""
    users = {
        "1": {"role": "audience", "gender": "F"},
        "2": {"role": "audience", "gender": "F"},
        "3": {"role": "audience", "gender": "M"},
        "4": {"role": "critic", "gender": "M"},
    }
    reviews = {
        "imdb": [
            Review("1", "MatchPoint", 3),
            Review("1", "BlueJasmine", 4),
            Review("1", "MatchPoint", 4),
            Review("2", "MatchPoint", 5),
            Review("2", "BlueJasmine", 4),
            Review("2", "BlueJasmine", 2),
            Review("3", "MatchPoint", 3),
            Review("3", "BlueJasmine", 2),
            Review("3", "MatchPoint", 4),
        ],
        "times": [
            Review("4", "MatchPoint", 2),
            Review("4", "BlueJasmine", 1),
            Review("4", "MatchPoint", 4),
        ],
    }
    run, _ = run_movie_workflow(users, reviews, threshold=2)
    expression = combined_aggregate(run["aggregator"]).to_tensor_sum()

    universe = AnnotationUniverse()
    for user_id, attributes in users.items():
        universe.register(Annotation(f"U_{user_id}", "user", attributes))
        universe.register(Annotation(f"S_{user_id}", "stats", {}))

    problem = SummarizationProblem(
        expression=expression,
        universe=universe,
        valuations=CancelSingleAttribute(
            universe, attributes=("gender", "role"), domains=("user",)
        ),
        val_func=EuclideanDistance(MAX),
        combiners=DomainCombiners(),
        constraint=DomainConstraints(
            {"user": SharedAttribute(("gender", "role"))}
        ),
    )
    result = Summarizer(
        problem, SummarizationConfig(w_dist=1.0, max_steps=2, seed=0)
    ).run()

    # Merging users shrinks the annotation vocabulary; the size only
    # drops once guards merge too (each guard still names its S_i), so
    # assert on both dimensions separately.
    assert result.n_steps >= 1
    assert result.final_size <= expression.size()
    assert len(result.summary_expression.annotation_names()) < len(
        expression.annotation_names()
    )
    assert result.final_distance.normalized <= 0.25

    # Provisioning through the summary approximates the original.
    from repro.provenance import cancel

    scenario = cancel(["U_1", "U_2"])  # ignore female reviewers
    original_vector = {
        key: value.finalized_value()
        for key, value in expression.evaluate(scenario.false_set()).items()
    }
    lifted = problem.combiners.lift_valuation(scenario, result.mapping, universe)
    summary_vector = result.summary_expression.evaluate(lifted.false_set())
    assert set(original_vector) == {"MatchPoint", "BlueJasmine"}
    assert summary_vector  # non-empty approximate answer


def test_thesis_example_4_2_3_flow(thesis_problem):
    """With wDist = 1 the algorithm chooses P''_0 (Audience) over P'_0
    (Female) because the latter errs when U2 is cancelled."""
    result = Summarizer(
        thesis_problem,
        SummarizationConfig(
            w_dist=1.0, max_steps=1, group_equivalent_first=False, seed=0
        ),
    ).run()
    (step,) = result.steps
    assert set(step.merged) == {"U1", "U3"}
    summary_terms = {
        term.annotations[0]: (term.value, term.count)
        for term in result.summary_expression.terms
        if term.group == "MatchPoint"
    }
    merged_name = step.new_annotation
    assert summary_terms[merged_name] == (3.0, 2)
    assert summary_terms["U2"] == (5.0, 1)
