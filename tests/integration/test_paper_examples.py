"""Faithful reconstructions of the thesis's worked examples."""

import math

import pytest

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    MappingState,
    MAXC,
    OR,
)
from repro.core.val_funcs import DDPCostDifference, align_vector
from repro.provenance import (
    MAX,
    SUM,
    Annotation,
    AnnotationUniverse,
    CostTransition,
    CountedAggregate,
    DBTransition,
    DDPExpression,
    DDPResult,
    Execution,
    ExplicitValuations,
    TensorSum,
    Term,
    Valuation,
    cancel,
)


class TestExample521Wikipedia:
    """Example 5.2.1: four user edits of four celebrity pages."""

    def setup_method(self):
        self.universe = AnnotationUniverse()
        # Roles follow the worked summary: the two guitarist-page
        # editors are the Top-Contributors, the two singer-page editors
        # the Reviewers.
        users = {
            "SalubriousToxin": "Reviewer",
            "Dubulge": "Reviewer",
            "DrBackInTheStreet": "Top-Contributor",
            "JasperTheFriendlyPunk": "Top-Contributor",
        }
        for name, level in users.items():
            self.universe.register(
                Annotation(name, "user", {"contribution_level": level})
            )
        pages = {
            "Adele": "wordnet_singer",
            "CelineDion": "wordnet_singer",
            "LoriBlack": "wordnet_guitarist",
            "AlecBaillie": "wordnet_guitarist",
        }
        for name, concept in pages.items():
            self.universe.register(
                Annotation(name, "page", {"concept": concept}, concept=concept)
            )
        # P_0 of Example 5.2.1: one minor (0) and three major (1) edits.
        self.expression = TensorSum(
            [
                Term(("Adele", "SalubriousToxin"), 0.0, group="Adele"),
                Term(("CelineDion", "Dubulge"), 1.0, group="CelineDion"),
                Term(("DrBackInTheStreet", "LoriBlack"), 1.0, group="LoriBlack"),
                Term(("AlecBaillie", "JasperTheFriendlyPunk"), 1.0, group="AlecBaillie"),
            ],
            SUM,
        )

    def _summary(self):
        """The thesis's output summary P'."""
        top = self.universe.new_summary(
            [
                self.universe["DrBackInTheStreet"],
                self.universe["JasperTheFriendlyPunk"],
            ],
            label="Top-Contributor",
        )
        reviewer = self.universe.new_summary(
            [self.universe["SalubriousToxin"], self.universe["Dubulge"]],
            label="Reviewer",
        )
        guitarist = self.universe.new_summary(
            [self.universe["LoriBlack"], self.universe["AlecBaillie"]],
            label="wordnet_guitarist",
            concept="wordnet_guitarist",
        )
        singer = self.universe.new_summary(
            [self.universe["Adele"], self.universe["CelineDion"]],
            label="wordnet_singer",
            concept="wordnet_singer",
        )
        step = {
            "DrBackInTheStreet": top.name,
            "JasperTheFriendlyPunk": top.name,
            "SalubriousToxin": reviewer.name,
            "Dubulge": reviewer.name,
            "LoriBlack": guitarist.name,
            "AlecBaillie": guitarist.name,
            "Adele": singer.name,
            "CelineDion": singer.name,
        }
        mapping = MappingState(sorted(self.expression.annotation_names())).compose(step)
        return self.expression.apply_mapping(step), mapping, {
            "top": top, "reviewer": reviewer,
            "guitarist": guitarist, "singer": singer,
        }

    def test_original_vector_under_cancel_dubulge(self):
        """v(p) = (Adele: 0, CelineDion: 0, LoriBlack: 1, AlecBaillie: 1)."""
        vector = self.expression.evaluate(frozenset({"Dubulge"}))
        finalized = {key: agg.finalized_value() for key, agg in vector.items()}
        assert finalized == {
            "Adele": 0.0, "CelineDion": 0.0, "LoriBlack": 1.0, "AlecBaillie": 1.0,
        }

    def test_transformed_vector_matches_thesis(self):
        """The original vector transforms to (guitarist: 2, singer: 0)."""
        summary, mapping, names = self._summary()
        original = self.expression.evaluate(frozenset({"Dubulge"}))
        aligned = align_vector(original, mapping, SUM)
        finalized = {key: agg.finalized_value() for key, agg in aligned.items()}
        assert finalized == {
            names["guitarist"].name: 2.0,
            names["singer"].name: 0.0,
        }

    def test_summary_vector_and_distance(self):
        """v'(p') = (guitarist: 2, singer: 1): Euclidean distance 1."""
        summary, mapping, names = self._summary()
        combiners = DomainCombiners()
        scenario = cancel(["Dubulge"])
        lifted = combiners.lifted_false_set(scenario, mapping, self.universe)
        assert lifted == frozenset()  # Top-Contributor survives (OR)
        vector = summary.evaluate(lifted)
        finalized = {key: agg.finalized_value() for key, agg in vector.items()}
        assert finalized == {
            names["guitarist"].name: 2.0,
            names["singer"].name: 1.0,
        }
        val_func = EuclideanDistance(SUM)
        original = self.expression.evaluate(scenario.false_set())
        assert val_func(original, vector, mapping) == pytest.approx(1.0)

    def test_summary_reads_as_thesis_expression(self):
        summary, _, names = self._summary()
        text = str(summary)
        assert f"({names['reviewer'].name} · {names['singer'].name}) ⊗ (1, 2)" in text
        assert f"({names['top'].name} · {names['guitarist'].name}) ⊗ (2, 2)" in text


class TestExample522DDP:
    """Example 5.2.2's valuation and VAL-FUNC computation."""

    def setup_method(self):
        self.expression = DDPExpression(
            [
                Execution(
                    [CostTransition("c1", 4.0), DBTransition(("d1", "d2"), "!=")]
                ),
                Execution(
                    [DBTransition(("d2", "d3"), "=="), CostTransition("c2", 6.0)]
                ),
            ]
        )
        self.universe = AnnotationUniverse()
        for name in ("c1", "c2"):
            self.universe.register(Annotation(name, "cost", {"cost_bucket": "B"}))
        for name in ("d1", "d2", "d3"):
            self.universe.register(Annotation(name, "db", {"relation": "R"}))

    def test_thesis_valuation_flow(self):
        """v: c1,c2 → 0, d* → True gives ⟨0, True⟩ on both expressions,
        so the cost-difference VAL-FUNC reports no error."""
        combiners = DomainCombiners(default=OR, per_domain={"cost": MAXC})
        c_summary = self.universe.new_summary(
            [self.universe["c1"], self.universe["c2"]], label="C1"
        )
        d_summary = self.universe.new_summary(
            [self.universe["d1"], self.universe["d3"]], label="D1"
        )
        step = {
            "c1": c_summary.name, "c2": c_summary.name,
            "d1": d_summary.name, "d3": d_summary.name,
        }
        mapping = MappingState(["c1", "c2", "d1", "d2", "d3"]).compose(step)
        summary = self.expression.apply_mapping(step)

        scenario = Valuation({"c1": 0.0, "c2": 0.0}, label="cancel cost C1")
        original = self.expression.evaluate_valuation(scenario)
        assert original == DDPResult(0.0, True)

        lifted = combiners.lift_valuation(scenario, mapping, self.universe)
        assert lifted.value(c_summary.name) == 0.0  # MAX(0, 0)
        assert lifted.truth(d_summary.name)         # OR(True, True)
        approx = summary.evaluate_valuation(lifted)
        assert approx == DDPResult(0.0, True)

        val_func = DDPCostDifference(10.0, 5)
        assert val_func(original, approx, mapping) == 0.0

    def test_feasibility_mismatch_pays_50(self):
        val_func = DDPCostDifference(10.0, 5)
        assert (
            val_func(DDPResult(3.0, True), DDPResult(math.inf, False), {}) == 50.0
        )


class TestExample231Valuation:
    """Example 2.3.1: guard semantics under partial valuations."""

    def test_guarded_review(self):
        from repro.provenance import Guard

        term = Term(
            ("U1",), 3.0, group="MP", guards=(Guard(("S1", "U1"), 5, ">", 2),)
        )
        expression = TensorSum([term], MAX)
        # S1 → 0: the inequality fails, the review is discarded.
        assert expression.evaluate(frozenset({"S1"}))["MP"].count == 0
        # S1 → 1: the condition holds and the review counts: value 3.
        assert expression.evaluate(frozenset())["MP"] == CountedAggregate(3.0, 1)
