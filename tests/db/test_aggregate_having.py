"""HAVING-guarded aggregation: aggregates used in later selections."""

import pytest

from repro.db import Relation, aggregate_having
from repro.provenance import Comparison, MAX, SUM


@pytest.fixture
def reviews():
    relation = Relation("Reviews", ("user", "movie", "rating"))
    relation.add({"user": "u1", "movie": "MP", "rating": 3}, annotation="R1")
    relation.add({"user": "u2", "movie": "MP", "rating": 5}, annotation="R2")
    relation.add({"user": "u2", "movie": "BJ", "rating": 4}, annotation="R3")
    return relation


def test_guard_tokens_attached(reviews):
    popular = aggregate_having(reviews, ["movie"], "rating", SUM, ">", 4)
    by_movie = {t["movie"]: t for t in popular}
    # MP: sum 8 > 4 holds while both reviews are present; the token
    # keeps the condition abstract.
    token = by_movie["MP"].prov
    assert isinstance(token, Comparison)
    assert token.value == 8.0
    assert token.truth({})
    assert not token.truth({"R1": False})  # guard provenance cancelled


def test_statically_failing_groups_dropped(reviews):
    popular = aggregate_having(reviews, ["movie"], "rating", SUM, ">", 100)
    assert len(popular) == 0


def test_statically_true_guard_folds_to_one(reviews):
    # agg >= 0 holds whether or not the provenance survives: the token
    # simplifies away entirely.
    always = aggregate_having(reviews, ["movie"], "rating", MAX, ">=", 0)
    assert all(str(t.prov) == "1" for t in always)


def test_aggregate_value_exposed(reviews):
    popular = aggregate_having(reviews, ["movie"], "rating", MAX, ">", 3)
    by_movie = {t["movie"]: t["agg"] for t in popular}
    assert by_movie == {"MP": 5.0, "BJ": 4.0}
