"""Provenance-tracking relational algebra."""

import pytest

from repro.db import (
    Relation,
    aggregate,
    combined_aggregate,
    guard,
    join,
    project,
    select,
    union,
)
from repro.provenance import MAX, SUM, Comparison, Product, Sum, Var


@pytest.fixture
def reviews():
    relation = Relation("Reviews", ("user", "movie", "rating"))
    relation.add({"user": "u1", "movie": "MP", "rating": 3}, annotation="R1")
    relation.add({"user": "u2", "movie": "MP", "rating": 5}, annotation="R2")
    relation.add({"user": "u2", "movie": "BJ", "rating": 4}, annotation="R3")
    return relation


@pytest.fixture
def users():
    relation = Relation("Users", ("user", "role"))
    relation.add({"user": "u1", "role": "audience"}, annotation="U1")
    relation.add({"user": "u2", "role": "critic"}, annotation="U2")
    return relation


def test_select_keeps_annotations(reviews):
    high = select(reviews, lambda values: values["rating"] >= 4)
    assert len(high) == 2
    assert all(isinstance(t.prov, Var) for t in high)


def test_project_adds_alternatives(reviews):
    movies = project(reviews, ["movie"])
    by_movie = {t["movie"]: t.prov for t in movies}
    # MP is derivable from R1 or R2: annotations add.
    assert by_movie["MP"] == Sum([Var("R1"), Var("R2")])
    assert by_movie["BJ"] == Var("R3")


def test_join_multiplies(reviews, users):
    joined = join(reviews, users, on=("user",))
    assert len(joined) == 3
    first = next(t for t in joined if t["user"] == "u1")
    assert first.prov == Product([Var("R1"), Var("U1")])
    assert first["role"] == "audience"


def test_join_infers_shared_columns(reviews, users):
    assert len(join(reviews, users)) == 3


def test_union_requires_same_schema(reviews, users):
    with pytest.raises(ValueError, match="identical schemas"):
        union(reviews, users)


def test_union_adds_duplicate_annotations():
    left = Relation("L", ("x",))
    left.add({"x": 1}, annotation="a")
    right = Relation("R", ("x",))
    right.add({"x": 1}, annotation="b")
    right.add({"x": 2}, annotation="c")
    merged = union(left, right)
    by_x = {t["x"]: t.prov for t in merged}
    assert by_x[1] == Sum([Var("a"), Var("b")])
    assert by_x[2] == Var("c")


def test_guard_attaches_comparisons(reviews):
    def activity(values):
        return Comparison(Var(f"S_{values['user']}"), 3, ">", 2)

    guarded = guard(reviews, activity)
    first = next(iter(guarded))
    assert isinstance(first.prov, Product)
    assert any(isinstance(child, Comparison) for child in first.prov.children)


def test_guard_drops_statically_false(reviews):
    def impossible(values):
        return Comparison(Var("s"), 1, ">", 2).simplify()  # ZERO

    assert len(guard(reviews, impossible)) == 0


def test_aggregate_produces_tensor_sums(reviews):
    movies = aggregate(reviews, ["movie"], "rating", MAX)
    by_movie = {t["movie"]: t.values["agg"] for t in movies}
    mp = by_movie["MP"]
    assert {tensor.value for tensor in mp.tensors} == {3.0, 5.0}
    assert all(tensor.group == "MP" for tensor in mp.tensors)


def test_combined_aggregate_round_trip(reviews):
    movies = aggregate(reviews, ["movie"], "rating", MAX)
    fused = combined_aggregate(movies)
    vector = fused.to_tensor_sum().full_vector()
    assert vector["MP"].finalized_value() == 5.0
    assert vector["BJ"].finalized_value() == 4.0


def test_combined_aggregate_type_errors(reviews):
    with pytest.raises(TypeError, match="AggSum"):
        combined_aggregate(reviews, output_column="rating")
    empty = Relation("E", ("agg",))
    with pytest.raises(ValueError, match="empty relation"):
        combined_aggregate(empty)
