"""K-relation storage layer."""

import pytest

from repro.db import AnnotatedTuple, Database, Relation
from repro.provenance import ONE, Var


class TestRelation:
    def test_add_with_annotation(self):
        relation = Relation("Users", ("user_id", "role"))
        relation.add({"user_id": "1", "role": "critic"}, annotation="U_1")
        (tuple_,) = list(relation)
        assert tuple_["role"] == "critic"
        assert tuple_.prov == Var("U_1")

    def test_add_defaults_to_one(self):
        relation = Relation("R", ("x",))
        added = relation.add({"x": 1})
        assert added.prov == ONE

    def test_add_rejects_both_prov_and_annotation(self):
        relation = Relation("R", ("x",))
        with pytest.raises(ValueError, match="either prov or annotation"):
            relation.add({"x": 1}, prov=Var("a"), annotation="a")

    def test_missing_column_rejected(self):
        relation = Relation("R", ("x", "y"))
        with pytest.raises(ValueError, match="missing columns"):
            relation.add({"x": 1})

    def test_annotations_listing(self):
        relation = Relation("R", ("x",))
        relation.add({"x": 1}, annotation="b")
        relation.add({"x": 2}, annotation="a")
        assert relation.annotations() == ("a", "b")

    def test_project_tuple(self):
        annotated = AnnotatedTuple({"x": 1, "y": 2})
        assert annotated.project(["y", "x"]) == (2, 1)


class TestDatabase:
    def test_lookup(self):
        database = Database([Relation("Users", ("user_id",))])
        assert "Users" in database
        assert database["Users"].name == "Users"
        with pytest.raises(KeyError, match="unknown relation"):
            database["Movies"]

    def test_put_and_names(self):
        database = Database()
        database.put(Relation("B", ("x",)))
        database.put(Relation("A", ("x",)))
        assert database.names() == ("A", "B")
