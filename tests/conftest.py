"""Shared fixtures: small hand-built provenance instances.

``thesis_movies`` reproduces the running example of the thesis
(Examples 2.2.1 / 3.1.1 / 4.2.3): three users reviewing "Match Point",
one of whom also reviews "Blue Jasmine", with MAX aggregation.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DomainCombiners,
    DomainConstraints,
    EuclideanDistance,
    SharedAttribute,
    SummarizationProblem,
)
from repro.provenance import (
    MAX,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    TensorSum,
    Term,
)


@pytest.fixture
def thesis_universe() -> AnnotationUniverse:
    """U1/U2/U3 with the attributes of Example 3.1.1 (U1, U2 female;
    U1, U3 audience) plus the two movies."""
    universe = AnnotationUniverse()
    universe.register(
        Annotation("U1", "user", {"gender": "F", "role": "audience"})
    )
    universe.register(
        Annotation("U2", "user", {"gender": "F", "role": "critic"})
    )
    universe.register(
        Annotation("U3", "user", {"gender": "M", "role": "audience"})
    )
    universe.register(Annotation("MatchPoint", "movie", {"genre": "drama"}))
    universe.register(Annotation("BlueJasmine", "movie", {"genre": "drama"}))
    return universe


@pytest.fixture
def match_point(thesis_universe) -> TensorSum:
    """P_s = U1 ⊗ (3,1) ⊕ U2 ⊗ (5,1) ⊕ U3 ⊗ (3,1) (Example 3.1.1)."""
    return TensorSum(
        [
            Term(("U1",), 3.0, group="MatchPoint"),
            Term(("U2",), 5.0, group="MatchPoint"),
            Term(("U3",), 3.0, group="MatchPoint"),
        ],
        MAX,
    )


@pytest.fixture
def thesis_movies(thesis_universe) -> TensorSum:
    """P_0 = P_MP ⊕_M P_BJ of Example 4.2.3."""
    return TensorSum(
        [
            Term(("U1",), 3.0, group="MatchPoint"),
            Term(("U2",), 5.0, group="MatchPoint"),
            Term(("U3",), 3.0, group="MatchPoint"),
            Term(("U2",), 4.0, group="BlueJasmine"),
        ],
        MAX,
    )


@pytest.fixture
def thesis_problem(thesis_universe, thesis_movies) -> SummarizationProblem:
    return SummarizationProblem(
        expression=thesis_movies,
        universe=thesis_universe,
        valuations=CancelSingleAnnotation(thesis_universe, domains=("user",)),
        val_func=EuclideanDistance(MAX),
        combiners=DomainCombiners(),
        constraint=DomainConstraints(
            {"user": SharedAttribute(("gender", "role"))}
        ),
        description="thesis running example",
    )
