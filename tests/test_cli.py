"""The repro command-line interface."""

import json

import pytest

from repro import serialization
from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_table51(capsys):
    code, out, _ = run(capsys, "table51")
    assert code == 0
    for name in ("Movies", "Wikipedia", "DDP"):
        assert name in out


def test_generate(capsys, tmp_path):
    out_file = tmp_path / "expr.json"
    code, out, _ = run(
        capsys, "generate", "movielens", "--seed", "3", "--out", str(out_file)
    )
    assert code == 0
    assert "Movies provenance" in out
    expression = serialization.load_expression(out_file.read_text())
    assert expression.size() > 0


def test_generate_show(capsys):
    code, out, _ = run(capsys, "generate", "ddp", "--seed", "1", "--show")
    assert code == 0
    assert "⟨" in out  # the DDP transitions are printed


def test_summarize_prov_approx(capsys, tmp_path):
    save = tmp_path / "summary.json"
    code, out, _ = run(
        capsys,
        "summarize",
        "movielens",
        "--seed", "2",
        "--wdist", "1.0",
        "--steps", "4",
        "--log",
        "--save", str(save),
    )
    assert code == 0
    assert "prov-approx on Movies" in out
    assert "step 1:" in out
    payload = json.loads(save.read_text())
    assert payload["kind"] == "summary"


def test_summarize_baselines(capsys):
    code, out, _ = run(
        capsys, "summarize", "movielens", "--algorithm", "random", "--steps", "3"
    )
    assert code == 0
    assert "random on Movies" in out
    code, out, _ = run(
        capsys, "summarize", "movielens", "--algorithm", "clustering", "--steps", "3"
    )
    assert code == 0


def test_summarize_clustering_rejected_for_ddp(capsys):
    code, _, err = run(
        capsys, "summarize", "ddp", "--algorithm", "clustering", "--steps", "2"
    )
    assert code == 2
    assert "undefined" in err


def test_experiment(capsys):
    code, out, _ = run(
        capsys, "experiment", "timing", "--dataset", "ddp", "--seeds", "1"
    )
    assert code == 0
    assert "candidate_ms" in out


def test_prox(capsys):
    code, out, _ = run(capsys, "prox", "--seed", "7")
    assert code == 0
    assert "PROX session" in out
    assert "Provenance Size" in out


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_reproduce_command(capsys, tmp_path):
    code, out, _ = run(
        capsys,
        "reproduce",
        "--out", str(tmp_path),
        "--figures", "fig_6_8a",
    )
    assert code == 0
    assert "results written" in out
    assert (tmp_path / "fig_6_8a.csv").exists()
    assert (tmp_path / "SUMMARY.md").exists()
