"""Property-based serialization round-trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serialization as ser
from repro.provenance import (
    MAX,
    SUM,
    CostTransition,
    DBTransition,
    DDPExpression,
    Execution,
    Guard,
    TensorSum,
    Term,
)

names = st.sampled_from([f"a{i}" for i in range(6)])


@st.composite
def tensor_sums(draw):
    n_terms = draw(st.integers(min_value=1, max_value=8))
    terms = []
    for _ in range(n_terms):
        monomial = tuple(
            sorted(draw(st.lists(names, min_size=1, max_size=3, unique=True)))
        )
        guards = ()
        if draw(st.booleans()):
            guards = (
                Guard(
                    tuple(sorted(draw(st.lists(names, min_size=1, max_size=2)))),
                    float(draw(st.integers(min_value=0, max_value=9))),
                    draw(st.sampled_from([">", ">=", "<", "<=", "==", "!="])),
                    float(draw(st.integers(min_value=0, max_value=9))),
                ),
            )
        terms.append(
            Term(
                monomial,
                float(draw(st.integers(min_value=0, max_value=9))),
                count=draw(st.integers(min_value=1, max_value=3)),
                group=draw(st.one_of(st.none(), st.sampled_from(["g1", "g2"]))),
                guards=guards,
            )
        )
    return TensorSum(terms, draw(st.sampled_from([MAX, SUM])))


@st.composite
def ddp_expressions(draw):
    n_execs = draw(st.integers(min_value=1, max_value=5))
    executions = []
    for _ in range(n_execs):
        transitions = []
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            if draw(st.booleans()):
                transitions.append(
                    CostTransition(
                        draw(names), float(draw(st.integers(min_value=1, max_value=10)))
                    )
                )
            else:
                transitions.append(
                    DBTransition(
                        tuple(sorted(draw(st.lists(names, min_size=1, max_size=2, unique=True)))),
                        draw(st.sampled_from(["!=", "=="])),
                    )
                )
        executions.append(Execution(transitions))
    return DDPExpression(executions)


@settings(max_examples=40, deadline=None)
@given(expression=tensor_sums(), data=st.data())
def test_tensor_sum_round_trip_preserves_semantics(expression, data):
    restored = ser.expression_from_dict(
        json.loads(ser.dumps(ser.expression_to_dict(expression)))
    )
    assert restored.size() == expression.size()
    assert restored.annotation_names() == expression.annotation_names()
    all_names = sorted(expression.annotation_names())
    cancelled = frozenset(
        data.draw(st.lists(st.sampled_from(all_names), unique=True))
        if all_names
        else []
    )
    assert restored.evaluate(cancelled) == expression.evaluate(cancelled)


@settings(max_examples=40, deadline=None)
@given(expression=ddp_expressions(), data=st.data())
def test_ddp_round_trip_preserves_semantics(expression, data):
    restored = ser.expression_from_dict(
        json.loads(ser.dumps(ser.expression_to_dict(expression)))
    )
    assert restored.size() == expression.size()
    all_names = sorted(expression.annotation_names())
    cancelled = frozenset(
        data.draw(st.lists(st.sampled_from(all_names), unique=True))
        if all_names
        else []
    )
    assert restored.evaluate(cancelled) == expression.evaluate(cancelled)
