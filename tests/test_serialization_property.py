"""Property-based serialization round-trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serialization as ser
from repro.core.streaming import ProvenanceDelta
from repro.provenance import (
    Annotation,
    MAX,
    SUM,
    CostTransition,
    DBTransition,
    DDPExpression,
    Execution,
    Guard,
    TensorSum,
    Term,
)
from repro.provenance.ir import TermStore
from repro.provenance.valuation import cancel

names = st.sampled_from([f"a{i}" for i in range(6)])


@st.composite
def tensor_sums(draw):
    n_terms = draw(st.integers(min_value=1, max_value=8))
    terms = []
    for _ in range(n_terms):
        monomial = tuple(
            sorted(draw(st.lists(names, min_size=1, max_size=3, unique=True)))
        )
        guards = ()
        if draw(st.booleans()):
            guards = (
                Guard(
                    tuple(sorted(draw(st.lists(names, min_size=1, max_size=2)))),
                    float(draw(st.integers(min_value=0, max_value=9))),
                    draw(st.sampled_from([">", ">=", "<", "<=", "==", "!="])),
                    float(draw(st.integers(min_value=0, max_value=9))),
                ),
            )
        terms.append(
            Term(
                monomial,
                float(draw(st.integers(min_value=0, max_value=9))),
                count=draw(st.integers(min_value=1, max_value=3)),
                group=draw(st.one_of(st.none(), st.sampled_from(["g1", "g2"]))),
                guards=guards,
            )
        )
    return TensorSum(terms, draw(st.sampled_from([MAX, SUM])))


@st.composite
def ddp_expressions(draw):
    n_execs = draw(st.integers(min_value=1, max_value=5))
    executions = []
    for _ in range(n_execs):
        transitions = []
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            if draw(st.booleans()):
                transitions.append(
                    CostTransition(
                        draw(names), float(draw(st.integers(min_value=1, max_value=10)))
                    )
                )
            else:
                transitions.append(
                    DBTransition(
                        tuple(sorted(draw(st.lists(names, min_size=1, max_size=2, unique=True)))),
                        draw(st.sampled_from(["!=", "=="])),
                    )
                )
        executions.append(Execution(transitions))
    return DDPExpression(executions)


@settings(max_examples=40, deadline=None)
@given(expression=tensor_sums(), data=st.data())
def test_tensor_sum_round_trip_preserves_semantics(expression, data):
    restored = ser.expression_from_dict(
        json.loads(ser.dumps(ser.expression_to_dict(expression)))
    )
    assert restored.size() == expression.size()
    assert restored.annotation_names() == expression.annotation_names()
    all_names = sorted(expression.annotation_names())
    cancelled = frozenset(
        data.draw(st.lists(st.sampled_from(all_names), unique=True))
        if all_names
        else []
    )
    assert restored.evaluate(cancelled) == expression.evaluate(cancelled)


# -- streaming deltas and mid-stream arena snapshots ---------------------------


@st.composite
def provenance_deltas(draw):
    annotations = tuple(
        Annotation(f"d{i}", "user", {"g": draw(st.sampled_from("AB"))})
        for i in range(draw(st.integers(min_value=0, max_value=3)))
    )
    terms = tuple(
        Term(
            tuple(sorted(draw(st.lists(names, min_size=1, max_size=3, unique=True)))),
            float(draw(st.integers(min_value=0, max_value=9))),
            count=draw(st.integers(min_value=1, max_value=3)),
            group=draw(st.one_of(st.none(), st.sampled_from(["g1", "g2"]))),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=4)))
    )
    valuations = tuple(
        cancel(
            draw(st.lists(names, unique=True, max_size=3)),
            weight=float(draw(st.integers(min_value=1, max_value=3))),
            label=f"fresh{i}",
        )
        for i in range(draw(st.integers(min_value=0, max_value=2)))
    )
    extend = {
        f"cancel a{i}": tuple(
            sorted(draw(st.lists(names, min_size=1, max_size=2, unique=True)))
        )
        for i in range(draw(st.integers(min_value=0, max_value=2)))
    }
    return ProvenanceDelta(
        annotations=annotations,
        terms=terms,
        valuations=valuations,
        extend_valuations=extend,
    )


@settings(max_examples=40, deadline=None)
@given(delta=provenance_deltas())
def test_delta_round_trip_is_exact(delta):
    restored = ser.delta_from_dict(json.loads(ser.dumps(ser.delta_to_dict(delta))))
    assert restored == delta


@st.composite
def arena_histories(draw):
    """A sequence of (names, monomials) append batches."""
    history = []
    for batch in range(draw(st.integers(min_value=1, max_value=4))):
        batch_names = [
            f"n{batch}_{i}"
            for i in range(draw(st.integers(min_value=0, max_value=3)))
        ]
        monomials = [
            [
                (draw(names), draw(st.integers(min_value=1, max_value=2)))
                for _ in range(draw(st.integers(min_value=1, max_value=3)))
            ]
            for _ in range(draw(st.integers(min_value=0, max_value=3)))
        ]
        history.append((batch_names, monomials))
    return history


@settings(max_examples=40, deadline=None)
@given(history=arena_histories(), split=st.integers(min_value=0, max_value=4))
def test_mid_stream_arena_snapshot_round_trip(history, split):
    """Snapshot after k deltas, reload, apply the rest: the final arena
    must be byte-identical to an uninterrupted ingest of every delta."""
    split = min(split, len(history))

    uninterrupted = TermStore()
    for batch_names, monomials in history:
        uninterrupted.append_delta(batch_names, monomials)

    streamed = TermStore()
    ids_before = []
    for batch_names, monomials in history[:split]:
        ids_before.append(streamed.append_delta(batch_names, monomials))
    blob = ser.term_store_to_bytes(streamed)
    reloaded = ser.term_store_from_bytes(blob)
    ids_after = []
    for index, (batch_names, monomials) in enumerate(history[:split]):
        ids_after.append(reloaded.append_delta(batch_names, monomials))
        # Re-appending known entries reuses ids: the reload kept them.
        assert ids_after[index] == ids_before[index]
    for batch_names, monomials in history[split:]:
        reloaded.append_delta(batch_names, monomials)

    assert ser.term_store_to_bytes(reloaded) == ser.term_store_to_bytes(
        uninterrupted
    )
    assert ser.term_store_to_dict(reloaded) == ser.term_store_to_dict(
        uninterrupted
    )


@settings(max_examples=40, deadline=None)
@given(expression=ddp_expressions(), data=st.data())
def test_ddp_round_trip_preserves_semantics(expression, data):
    restored = ser.expression_from_dict(
        json.loads(ser.dumps(ser.expression_to_dict(expression)))
    )
    assert restored.size() == expression.size()
    all_names = sorted(expression.annotation_names())
    cancelled = frozenset(
        data.draw(st.lists(st.sampled_from(all_names), unique=True))
        if all_names
        else []
    )
    assert restored.evaluate(cancelled) == expression.evaluate(cancelled)
