"""DDP generator: structure of Table 5.1 row 3 / Example 5.2.2."""

import pytest

from repro.datasets import (
    DDPConfig,
    MAX_COST_PER_TRANSITION,
    MAX_TRANSITIONS_PER_EXECUTION,
    generate_ddp,
)
from repro.provenance import CostTransition, DBTransition


@pytest.fixture
def instance():
    return generate_ddp(DDPConfig(seed=5))


def test_determinism():
    assert str(generate_ddp(DDPConfig(seed=5)).expression) == str(
        generate_ddp(DDPConfig(seed=5)).expression
    )


def test_execution_bounds(instance):
    for execution in instance.expression.executions:
        assert 1 <= len(execution.transitions) <= MAX_TRANSITIONS_PER_EXECUTION
        for transition in execution.transitions:
            if isinstance(transition, CostTransition):
                assert 0 < transition.cost <= MAX_COST_PER_TRANSITION
            else:
                assert isinstance(transition, DBTransition)
                assert transition.op in ("!=", "==")


def test_template_structure_enables_dedup(instance):
    """Executions instantiate shared templates, so merging same-bucket
    variables can collapse executions (size decreases)."""
    from repro.core import SummarizationConfig, summarize

    result = summarize(
        instance.problem(), SummarizationConfig(w_dist=0.0, max_steps=15, seed=0)
    )
    assert result.final_size < result.original_size


def test_variable_attributes(instance):
    universe = instance.universe
    for cost_var in universe.in_domain("cost"):
        assert cost_var.attributes["cost_bucket"].startswith("B")
        assert 0 < cost_var.attributes["cost"] <= MAX_COST_PER_TRANSITION
    for db_var in universe.in_domain("db"):
        assert db_var.attributes["relation"].startswith("R")
        assert db_var.attributes["key_range"].startswith("K")


def test_constraints_by_bucket_and_relation(instance):
    universe = instance.universe
    costs = universe.in_domain("cost")
    same_bucket = [
        c for c in costs if c.attributes["cost_bucket"] == costs[0].attributes["cost_bucket"]
    ]
    assert instance.constraint.propose(same_bucket[0], same_bucket[1])
    other_bucket = next(
        c for c in costs
        if c.attributes["cost_bucket"] != costs[0].attributes["cost_bucket"]
    )
    assert instance.constraint.propose(costs[0], other_bucket) is None


def test_combiners(instance):
    from repro.core import MaxCombiner, OrCombiner

    assert isinstance(instance.combiners.for_domain("cost"), MaxCombiner)
    assert isinstance(instance.combiners.for_domain("db"), OrCombiner)


def test_no_cluster_specs(instance):
    assert instance.cluster_specs == ()


def test_val_func_penalty(instance):
    assert instance.val_func.max_error(instance.expression) == pytest.approx(
        MAX_COST_PER_TRANSITION * MAX_TRANSITIONS_PER_EXECUTION
    )


def test_config_validation():
    with pytest.raises(ValueError):
        DDPConfig(n_templates=0)
    with pytest.raises(ValueError):
        DDPConfig(min_transitions=4, max_transitions=2)
    with pytest.raises(ValueError, match="at most"):
        DDPConfig(max_transitions=9)
    with pytest.raises(ValueError):
        DDPConfig(valuation_class="weird")
