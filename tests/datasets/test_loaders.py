"""Loaders for real dataset dumps (tested on written fixtures)."""

import pytest

from repro.core import SummarizationConfig, summarize
from repro.datasets.loaders import (
    ML_GENRES,
    load_movielens_100k,
    load_wikipedia_edits,
)
from repro.taxonomy import wordnet_person_fragment


@pytest.fixture
def ml_dir(tmp_path):
    """A tiny MovieLens-100k-format dump."""
    (tmp_path / "u.user").write_text(
        "1|24|M|technician|85711\n"
        "2|53|F|other|94043\n"
        "3|23|M|writer|32067\n"
    )
    flags = ["0"] * len(ML_GENRES)
    flags[ML_GENRES.index("Drama")] = "1"
    drama = "|".join(flags)
    flags = ["0"] * len(ML_GENRES)
    flags[ML_GENRES.index("Comedy")] = "1"
    comedy = "|".join(flags)
    (tmp_path / "u.item").write_text(
        f"1|Toy Story (1995)|01-Jan-1995||url|{comedy}\n"
        f"2|GoldenEye (1995)|01-Jan-1995||url|{drama}\n"
        f"3|Four Rooms (1995)|01-Jan-1995||url|{drama}\n"
    )
    (tmp_path / "u.data").write_text(
        "1\t1\t5\t874965758\n"
        "1\t2\t3\t876893171\n"
        "2\t1\t4\t878542960\n"
        "2\t3\t1\t876893119\n"
        "3\t2\t2\t889751712\n"
    )
    return tmp_path


class TestMovieLensLoader:
    def test_structure(self, ml_dir):
        instance = load_movielens_100k(ml_dir)
        assert instance.expression.size() == 15  # 5 ratings × 3 annotations
        assert len(instance.universe.in_domain("user")) == 3
        assert len(instance.universe.in_domain("movie")) == 3
        user = instance.universe["UID1"]
        assert user.attributes["gender"] == "M"
        assert user.attributes["age_range"] == "18-24"
        movie = instance.universe["Toy Story (1995)"]
        assert movie.attributes["genre"] == "Comedy"
        assert movie.attributes["decade"] == "1990s"

    def test_ratings_flow_into_groups(self, ml_dir):
        instance = load_movielens_100k(ml_dir)
        vector = instance.expression.full_vector()
        assert vector["Toy Story (1995)"].finalized_value() == 5.0
        assert vector["GoldenEye (1995)"].finalized_value() == 3.0

    def test_max_ratings_truncation(self, ml_dir):
        instance = load_movielens_100k(ml_dir, max_ratings=2)
        assert len(instance.expression) == 2

    def test_summarizable(self, ml_dir):
        instance = load_movielens_100k(ml_dir)
        result = summarize(
            instance.problem(), SummarizationConfig(w_dist=0.5, max_steps=2)
        )
        assert result.final_size <= instance.expression.size()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="u.user"):
            load_movielens_100k(tmp_path)

    def test_valuation_class_options(self, ml_dir):
        annotation = load_movielens_100k(ml_dir, valuation_class="annotation")
        assert len(annotation.valuations) == 3


class TestWikipediaLoader:
    @pytest.fixture
    def edits_file(self, tmp_path):
        path = tmp_path / "edits.tsv"
        path.write_text(
            "username\tpage_title\tconcept\tedit_type\n"
            "Dubulge\tAdele\twordnet_singer\t1\n"
            "Dubulge\tCeline Dion\twordnet_singer\t1\n"
            "Dubulge\tLori Black\twordnet_guitarist\t0\n"
            "SalubriousToxin\tAdele\twordnet_singer\t0\n"
            "Jasper\tLori Black\twordnet_guitarist\t1\n"
        )
        return path

    def test_structure(self, edits_file):
        taxonomy = wordnet_person_fragment()
        instance = load_wikipedia_edits(edits_file, taxonomy)
        assert len(instance.universe.in_domain("user")) == 3
        assert len(instance.universe.in_domain("page")) == 3
        assert instance.universe["Adele"].concept == "wordnet_singer"
        # Dubulge (3 edits) outranks the single-edit users.
        assert (
            instance.universe["Dubulge"].attributes["contribution_level"]
            == "Top-Contributor"
        )
        vector = instance.expression.full_vector()
        assert vector["Adele"].finalized_value() == 1.0  # one major, one minor

    def test_unknown_concept_rejected(self, tmp_path):
        path = tmp_path / "edits.tsv"
        path.write_text("A\tPage\twordnet_dragon\t1\n")
        with pytest.raises(ValueError, match="unknown taxonomy concept"):
            load_wikipedia_edits(path, wordnet_person_fragment())

    def test_malformed_and_empty(self, tmp_path):
        path = tmp_path / "edits.tsv"
        path.write_text("A\tPage\n")
        with pytest.raises(ValueError, match="4 tab-separated"):
            load_wikipedia_edits(path, wordnet_person_fragment())
        path.write_text("")
        with pytest.raises(ValueError, match="no edits"):
            load_wikipedia_edits(path, wordnet_person_fragment())

    def test_summarizable(self, edits_file):
        instance = load_wikipedia_edits(edits_file, wordnet_person_fragment())
        result = summarize(
            instance.problem(), SummarizationConfig(w_dist=1.0, max_steps=2)
        )
        assert result.n_steps >= 1
