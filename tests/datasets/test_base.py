"""DatasetInstance plumbing and Table 5.1 rendering."""

from repro.datasets import (
    DDPConfig,
    MovieLensConfig,
    WikipediaConfig,
    format_table_5_1,
    generate_ddp,
    generate_movielens,
    generate_wikipedia,
)
from repro.provenance import CancelSingleAnnotation


def test_problem_override_valuations():
    instance = generate_movielens(MovieLensConfig(seed=1))
    override = CancelSingleAnnotation(instance.universe, domains=("user",))
    problem = instance.problem(valuations=override)
    assert problem.valuations is override
    default = instance.problem()
    assert default.valuations is instance.valuations


def test_table_5_1_has_all_rows():
    rows = [
        generate_movielens(MovieLensConfig(seed=0)).describe_row(),
        generate_wikipedia(WikipediaConfig(seed=0)).describe_row(),
        generate_ddp(DDPConfig(seed=0)).describe_row(),
    ]
    table = format_table_5_1(rows)
    assert "Movies" in table
    assert "Wikipedia" in table
    assert "DDP" in table
    for header in (
        "Type", "Structure", "Mapping Constraints", "Aggregation",
        "Valuations Classes", "φ Functions", "VAL-FUNC",
    ):
        assert header in table


def test_format_empty():
    assert format_table_5_1([]) == "(no datasets)"
