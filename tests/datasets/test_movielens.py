"""MovieLens generator: structure of Table 5.1 row 1."""

import pytest

from repro.datasets import MovieLensConfig, generate_movielens
from repro.provenance import CancelSingleAnnotation, CancelSingleAttribute


@pytest.fixture
def instance():
    return generate_movielens(MovieLensConfig(seed=5))


def test_determinism():
    first = generate_movielens(MovieLensConfig(seed=5))
    second = generate_movielens(MovieLensConfig(seed=5))
    assert str(first.expression) == str(second.expression)
    assert first.universe.names() == second.universe.names()


def test_seed_changes_data():
    first = generate_movielens(MovieLensConfig(seed=5))
    second = generate_movielens(MovieLensConfig(seed=6))
    assert str(first.expression) != str(second.expression)


def test_term_structure(instance):
    """(UserID · MovieTitle · MovieYear) ⊗ (Rating, 1)."""
    universe = instance.universe
    for term in instance.expression.terms:
        domains = sorted(universe[name].domain for name in term.annotations)
        assert domains == ["movie", "user", "year"]
        assert 1.0 <= term.value <= 5.0
        assert universe[term.group].domain == "movie"
        assert not term.guards


def test_user_attributes(instance):
    users = instance.universe.in_domain("user")
    assert len(users) == 30
    for user in users:
        assert user.attributes["gender"] in ("M", "F")
        assert set(user.attributes) == {
            "gender", "age_range", "occupation", "zip_region",
        }


def test_valuation_classes():
    attribute = generate_movielens(MovieLensConfig(seed=1))
    assert isinstance(attribute.valuations, CancelSingleAttribute)
    annotation = generate_movielens(
        MovieLensConfig(seed=1, valuation_class="annotation")
    )
    assert isinstance(annotation.valuations, CancelSingleAnnotation)
    assert len(annotation.valuations) == 30  # one per user


def test_experiment_constraints_merge_users_only(instance):
    universe = instance.universe
    movie = universe.in_domain("movie")[0]
    other = universe.in_domain("movie")[1]
    assert instance.constraint.propose(movie, other) is None


def test_movie_merges_option():
    instance = generate_movielens(MovieLensConfig(seed=5, include_movie_merges=True))
    movies = instance.universe.in_domain("movie")
    same_decade = [
        movie
        for movie in movies
        if movie.attributes["decade"] == movies[0].attributes["decade"]
    ]
    if len(same_decade) >= 2:
        assert instance.constraint.propose(same_decade[0], same_decade[1])


def test_config_validation():
    with pytest.raises(ValueError):
        MovieLensConfig(n_users=1)
    with pytest.raises(ValueError):
        MovieLensConfig(min_ratings_per_user=5, max_ratings_per_user=3)
    with pytest.raises(ValueError):
        MovieLensConfig(valuation_class="weird")


def test_describe_row(instance):
    row = instance.describe_row()
    assert row["Type"] == "Movies"
    assert "UserID·MovieTitle·MovieYear" in row["Structure"]
    assert row["Aggregation"] == "MAX"
    assert "Euclidean" in row["VAL-FUNC"]
