"""Wikipedia generator: structure of Table 5.1 row 2."""

import pytest

from repro.datasets import WikipediaConfig, generate_wikipedia
from repro.provenance import TaxonomyConsistent


@pytest.fixture
def instance():
    return generate_wikipedia(WikipediaConfig(seed=5))


def test_determinism():
    first = generate_wikipedia(WikipediaConfig(seed=5))
    second = generate_wikipedia(WikipediaConfig(seed=5))
    assert str(first.expression) == str(second.expression)


def test_term_structure(instance):
    """(Username · PageTitle) ⊗ (EditType, 1) with EditType ∈ {0, 1}."""
    universe = instance.universe
    for term in instance.expression.terms:
        domains = sorted(universe[name].domain for name in term.annotations)
        assert domains == ["page", "user"]
        assert term.value in (0.0, 1.0) or term.value >= 0  # congruent merges sum
        assert universe[term.group].domain == "page"


def test_pages_carry_taxonomy_concepts(instance):
    taxonomy = instance.taxonomy
    for page in instance.universe.in_domain("page"):
        assert page.concept is not None
        assert page.concept in taxonomy


def test_user_attributes(instance):
    for user in instance.universe.in_domain("user"):
        assert user.attributes["contribution_level"] in (
            "Top-Contributor", "Reviewer", "Novice",
        )
        assert isinstance(user.attributes["is_registered"], bool)


def test_valuations_are_taxonomy_consistent(instance):
    assert isinstance(instance.valuations, TaxonomyConsistent)
    assert len(instance.valuations) > 0
    for valuation in instance.valuations:
        assert instance.valuations.is_consistent(valuation)


def test_page_merges_need_shared_ancestor(instance):
    universe = instance.universe
    pages = universe.in_domain("page")
    # Any two pages under the person fragment share some ancestor, but
    # the max_distance bound rejects distant ones.
    singer_pages = [p for p in pages if p.concept == "wordnet_singer"]
    if len(singer_pages) >= 2:
        proposal = instance.constraint.propose(singer_pages[0], singer_pages[1])
        assert proposal is not None
        assert proposal.concept == "wordnet_singer"


def test_cluster_specs_cover_both_domains(instance):
    domains = {spec.domain for spec in instance.cluster_specs}
    assert domains == {"user", "page"}
    page_spec = next(s for s in instance.cluster_specs if s.domain == "page")
    assert page_spec.key_domain == "user"


def test_config_validation():
    with pytest.raises(ValueError):
        WikipediaConfig(n_users=1)
    with pytest.raises(ValueError):
        WikipediaConfig(major_edit_probability=1.5)
    with pytest.raises(ValueError):
        WikipediaConfig(valuation_class="weird")
