"""Wu-Palmer relatedness and the merge tie-break distances."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.taxonomy import (
    Taxonomy,
    group_distance,
    leaf_concepts,
    most_specific_common_ancestor,
    synthetic_taxonomy,
    wordnet_person_fragment,
    wu_palmer_distance,
    wu_palmer_similarity,
)


@pytest.fixture
def taxonomy():
    return wordnet_person_fragment()


def test_identity_similarity_is_one(taxonomy):
    assert wu_palmer_similarity(taxonomy, "wordnet_singer", "wordnet_singer") == 1.0
    assert wu_palmer_distance(taxonomy, "wordnet_singer", "wordnet_singer") == 0.0


def test_known_value(taxonomy):
    # singer depth 7, guitarist depth 8, LCA musician depth 6
    # (node-counted: 8, 9, 7): sim = 2*7 / (8+9) = 14/17.
    assert wu_palmer_similarity(
        taxonomy, "wordnet_singer", "wordnet_guitarist"
    ) == pytest.approx(14 / 17)


def test_closer_concepts_more_similar(taxonomy):
    close = wu_palmer_similarity(taxonomy, "wordnet_singer", "wordnet_guitarist")
    far = wu_palmer_similarity(taxonomy, "wordnet_singer", "wordnet_physicist")
    assert close > far
    # The thesis's preference: mapping to 'Guitarist' beats 'Person'.
    assert wu_palmer_distance(
        taxonomy, "wordnet_guitarist", "wordnet_instrumentalist"
    ) < wu_palmer_distance(taxonomy, "wordnet_guitarist", "wordnet_person")


def test_disjoint_concepts():
    taxonomy = Taxonomy()
    taxonomy.add("a")
    taxonomy.add("b")
    assert wu_palmer_similarity(taxonomy, "a", "b") == 0.0
    assert wu_palmer_distance(taxonomy, "a", "b") == 1.0


def test_symmetry(taxonomy):
    concepts = ["wordnet_singer", "wordnet_actor", "wordnet_poet"]
    for first in concepts:
        for second in concepts:
            assert wu_palmer_similarity(taxonomy, first, second) == pytest.approx(
                wu_palmer_similarity(taxonomy, second, first)
            )


def test_group_distance_modes(taxonomy):
    members = ("wordnet_singer", "wordnet_guitarist")
    target = "wordnet_musician"
    maximum = group_distance(taxonomy, members, target, mode="max")
    total = group_distance(taxonomy, members, target, mode="sum")
    assert 0 < maximum < 1
    assert total >= maximum
    assert group_distance(taxonomy, (), target) == 0.0
    with pytest.raises(ValueError, match="'max' or 'sum'"):
        group_distance(taxonomy, members, target, mode="avg")


def test_most_specific_common_ancestor(taxonomy):
    assert (
        most_specific_common_ancestor(
            taxonomy, ["wordnet_singer", "wordnet_pianist"]
        )
        == "wordnet_musician"
    )


@given(seed=st.integers(min_value=0, max_value=50))
def test_synthetic_taxonomy_bounds(seed):
    taxonomy = synthetic_taxonomy(depth=3, branching=3, seed=seed)
    leaves = leaf_concepts(taxonomy)
    assert leaves
    for leaf in leaves:
        similarity = wu_palmer_similarity(taxonomy, leaf, leaves[0])
        assert 0.0 <= similarity <= 1.0


def test_synthetic_taxonomy_validation():
    with pytest.raises(ValueError):
        synthetic_taxonomy(depth=0)
    with pytest.raises(ValueError):
        synthetic_taxonomy(branching=1)
