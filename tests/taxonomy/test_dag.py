"""Taxonomy structure: ancestry, depth, LCA."""

import pytest

from repro.taxonomy import Taxonomy, wordnet_person_fragment


@pytest.fixture
def taxonomy():
    return wordnet_person_fragment()


class TestStructure:
    def test_roots_and_parents(self, taxonomy):
        assert taxonomy.roots() == ("wordnet_entity",)
        assert taxonomy.parent("wordnet_singer") == "wordnet_musician"
        assert taxonomy.parent("wordnet_entity") is None

    def test_children(self, taxonomy):
        assert set(taxonomy.children("wordnet_musician")) == {
            "wordnet_singer",
            "wordnet_instrumentalist",
        }

    def test_contains_len_iter(self, taxonomy):
        assert "wordnet_guitarist" in taxonomy
        assert "wordnet_drummer" not in taxonomy
        assert len(taxonomy) == len(list(taxonomy)) == 28

    def test_unknown_concept(self, taxonomy):
        with pytest.raises(KeyError, match="unknown concept"):
            taxonomy.parent("wordnet_drummer")

    def test_single_parent_enforced(self):
        taxonomy = Taxonomy()
        taxonomy.add("b", "a")
        with pytest.raises(ValueError, match="one parent"):
            taxonomy.add("b", "c")

    def test_frozen_after_query(self, taxonomy):
        taxonomy.depth("wordnet_singer")
        with pytest.raises(RuntimeError, match="frozen"):
            taxonomy.add("new", "wordnet_singer")

    def test_cycle_detection(self):
        taxonomy = Taxonomy.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(ValueError, match="cycle"):
            taxonomy.ancestors("a")


class TestAncestry:
    def test_ancestors_path(self, taxonomy):
        # The hypernym path displayed in §6.2's feature-vector example.
        assert taxonomy.ancestors("wordnet_singer") == (
            "wordnet_singer",
            "wordnet_musician",
            "wordnet_performer",
            "wordnet_entertainer",
            "wordnet_person",
            "wordnet_causal_agent",
            "wordnet_physical_entity",
            "wordnet_entity",
        )

    def test_depth(self, taxonomy):
        assert taxonomy.depth("wordnet_entity") == 0
        assert taxonomy.depth("wordnet_singer") == 7
        assert taxonomy.depth("wordnet_guitarist") == 8

    def test_is_ancestor(self, taxonomy):
        assert taxonomy.is_ancestor("wordnet_person", "wordnet_guitarist")
        assert taxonomy.is_ancestor("wordnet_singer", "wordnet_singer")
        assert not taxonomy.is_ancestor("wordnet_singer", "wordnet_guitarist")

    def test_lca(self, taxonomy):
        assert taxonomy.lca("wordnet_singer", "wordnet_guitarist") == "wordnet_musician"
        assert taxonomy.lca("wordnet_singer", "wordnet_physicist") == "wordnet_person"
        assert taxonomy.lca("wordnet_singer", "wordnet_singer") == "wordnet_singer"

    def test_lca_disjoint(self):
        taxonomy = Taxonomy()
        taxonomy.add("a")
        taxonomy.add("b")
        assert taxonomy.lca("a", "b") is None

    def test_lca_of_many(self, taxonomy):
        assert (
            taxonomy.lca_of(
                ["wordnet_singer", "wordnet_guitarist", "wordnet_pianist"]
            )
            == "wordnet_musician"
        )
        assert taxonomy.lca_of([]) is None

    def test_parent_map(self, taxonomy):
        mapping = taxonomy.parent_map()
        assert mapping["wordnet_singer"] == "wordnet_musician"
        assert mapping["wordnet_entity"] is None
