"""CandidateHom enumeration."""

import random

import pytest

from repro.core import (
    DomainConstraints,
    MergeProposal,
    SharedAttribute,
    enumerate_candidates,
    virtual_summary,
)
from repro.provenance import MAX, Annotation, AnnotationUniverse, TensorSum, Term


@pytest.fixture
def setting():
    universe = AnnotationUniverse()
    users = [
        ("U1", {"gender": "F", "age": "a"}),
        ("U2", {"gender": "F", "age": "b"}),
        ("U3", {"gender": "M", "age": "a"}),
        ("U4", {"gender": "M", "age": "b"}),
    ]
    for name, attributes in users:
        universe.register(Annotation(name, "user", attributes))
    universe.register(Annotation("M1", "movie", {"genre": "g"}))
    expression = TensorSum(
        [Term((name, "M1"), 3.0, group="M1") for name, _ in users], MAX
    )
    constraint = DomainConstraints({"user": SharedAttribute(("gender", "age"))})
    return universe, expression, constraint


def test_pairs_respect_constraints(setting):
    universe, expression, constraint = setting
    candidates = enumerate_candidates(expression, universe, constraint)
    pairs = {frozenset(candidate.parts) for candidate in candidates}
    assert pairs == {
        frozenset({"U1", "U2"}),  # gender=F
        frozenset({"U3", "U4"}),  # gender=M
        frozenset({"U1", "U3"}),  # age=a
        frozenset({"U2", "U4"}),  # age=b
    }


def test_only_present_annotations_considered(setting):
    universe, expression, constraint = setting
    universe.register(Annotation("U9", "user", {"gender": "F", "age": "a"}))
    candidates = enumerate_candidates(expression, universe, constraint)
    assert all("U9" not in candidate.parts for candidate in candidates)


def test_arity_three_extends_greedily(setting):
    universe, expression, constraint = setting
    candidates = enumerate_candidates(expression, universe, constraint, arity=3)
    # No three users share an attribute value here, so groups stay pairs.
    assert all(len(candidate.parts) == 2 for candidate in candidates)
    universe.register(Annotation("U5", "user", {"gender": "F", "age": "c"}))
    expression = TensorSum(
        list(expression.terms) + [Term(("M1", "U5"), 2.0, group="M1")],
        MAX,
    )
    candidates = enumerate_candidates(expression, universe, constraint, arity=3)
    triples = [candidate for candidate in candidates if len(candidate.parts) == 3]
    assert any(set(t.parts) == {"U1", "U2", "U5"} for t in triples)  # all F


def test_cap_subsamples_deterministically(setting):
    universe, expression, constraint = setting
    first = enumerate_candidates(
        expression, universe, constraint, cap=2, rng=random.Random(3)
    )
    second = enumerate_candidates(
        expression, universe, constraint, cap=2, rng=random.Random(3)
    )
    assert len(first) == 2
    assert [c.parts for c in first] == [c.parts for c in second]


def test_arity_validation(setting):
    universe, expression, constraint = setting
    with pytest.raises(ValueError, match="at least 2"):
        enumerate_candidates(expression, universe, constraint, arity=1)


def test_virtual_summary_contents():
    first = Annotation("U1", "user", {"gender": "F", "age": "a"})
    second = Annotation("U2", "user", {"gender": "F", "age": "b"})
    virtual = virtual_summary([first, second], MergeProposal("Gender=F"))
    assert virtual.base_members() == frozenset({"U1", "U2"})
    assert dict(virtual.attributes) == {"gender": "F"}
    assert virtual.domain == "user"
    assert virtual.name.endswith("?cand")
