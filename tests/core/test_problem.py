"""Problem/config validation."""

import pytest

from repro.core import SummarizationConfig


class TestConfigValidation:
    def test_weights_complement(self):
        config = SummarizationConfig(w_dist=0.3)
        assert config.w_size == pytest.approx(0.7)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="must equal 1"):
            SummarizationConfig(w_dist=0.5, w_size=0.7)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"w_dist": -0.1},
            {"w_dist": 1.5},
            {"target_size": 0},
            {"target_dist": 1.5},
            {"max_steps": -1},
            {"merge_arity": 1},
            {"scoring": "bogus"},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            SummarizationConfig(**kwargs)

    def test_flavor_presets(self):
        # Flavor 2 (TARGET-SIZE): wDist=1, target_dist=1.
        flavor2 = SummarizationConfig(w_dist=1.0, target_size=50)
        assert flavor2.target_dist == 1.0
        # Flavor 3 (TARGET-DIST): wDist=0, target_size=1.
        flavor3 = SummarizationConfig(w_dist=0.0, target_dist=0.05)
        assert flavor3.target_size == 1


def test_problem_describe(thesis_problem):
    text = thesis_problem.describe()
    assert "Cancel Single Annotation" in text
    assert "Euclidean" in text
    assert "expression size: 4" in text
