"""The kernel protocol's bit-identity contract, property-checked.

Every op of the numpy backend must equal the pure-python reference
backend *exactly* -- same floats (``==``, not ``approx``), same ints,
same ordering -- on arbitrary inputs, including ragged tail blocks
where ``n_vals`` is not a multiple of 64.  Plus the resolution layer:
env-token mapping, graceful degrade, the context manager, and the
info gauge.
"""

import logging
from array import array
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.kernels import PythonKernel
from repro.observability import metrics as _metrics

REFERENCE = PythonKernel()

try:
    from repro.core.kernels.numpy_backend import NumpyKernel

    NUMPY = NumpyKernel()
except Exception:  # pragma: no cover - exercised only without numpy
    NUMPY = None

needs_numpy = pytest.mark.skipif(
    NUMPY is None, reason="numpy backend unavailable"
)

# Finite doubles whose products/sums stay finite across a dozen terms.
values = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
positive_weights = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@st.composite
def fold_cases(draw):
    # Sizes straddle the 64-bit word boundary so ragged tail blocks,
    # exact multiples and sub-word masks are all exercised.
    n_vals = draw(st.integers(min_value=1, max_value=200))
    n_terms = draw(st.integers(min_value=0, max_value=10))
    masks = [
        (draw(values), draw(st.integers(0, (1 << n_vals) - 1)))
        for _ in range(n_terms)
    ]
    wanted = draw(
        st.one_of(st.none(), st.integers(0, (1 << n_vals) - 1))
    )
    return n_vals, masks, wanted


@st.composite
def word_vectors(draw):
    n_words = draw(st.integers(min_value=1, max_value=8))
    n_vectors = draw(st.integers(min_value=1, max_value=6))
    word = st.integers(min_value=0, max_value=(1 << 64) - 1)
    return [
        array("Q", [draw(word) for _ in range(n_words)])
        for _ in range(n_vectors)
    ]


@st.composite
def monomial_runs(draw):
    def run():
        ids = sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=50), max_size=8
                )
            )
        )
        return [
            (ann_id, draw(st.integers(min_value=1, max_value=5)))
            for ann_id in ids
        ]

    return run(), run()


@needs_numpy
@settings(max_examples=120, deadline=None)
@given(case=fold_cases())
def test_fold_max_bit_identical(case):
    n_vals, masks, wanted = case
    # MAX folds consume masks in descending value order (the scorers
    # presort every group); the contract is defined over that order.
    masks = sorted(masks, key=lambda entry: -entry[0])
    assert NUMPY.fold_max(masks, n_vals, wanted) == REFERENCE.fold_max(
        masks, n_vals, wanted
    )


@needs_numpy
@settings(max_examples=120, deadline=None)
@given(case=fold_cases())
def test_fold_sum_bit_identical(case):
    n_vals, masks, wanted = case
    assert NUMPY.fold_sum(masks, n_vals, wanted) == REFERENCE.fold_sum(
        masks, n_vals, wanted
    )


@needs_numpy
@settings(max_examples=60, deadline=None)
@given(case=fold_cases(), is_max=st.booleans(), n_groups=st.integers(1, 4))
def test_baseline_scatter_matches_standalone_folds(case, is_max, n_groups):
    n_vals, masks, _ = case
    if is_max:
        masks = sorted(masks, key=lambda entry: -entry[0])
    # Same masks under several group keys: the shared unpack memo must
    # not leak state between groups.
    groups = [(f"g{index}", masks) for index in range(n_groups)]
    assert NUMPY.baseline_scatter(
        groups, n_vals, is_max
    ) == REFERENCE.baseline_scatter(groups, n_vals, is_max)


@needs_numpy
@settings(max_examples=120, deadline=None)
@given(
    pairs=st.lists(st.tuples(values, positive_weights), max_size=200)
)
def test_weighted_moments_bit_identical(pairs):
    vals = [value for value, _ in pairs]
    weights = [weight for _, weight in pairs]
    assert NUMPY.weighted_moments(vals, weights) == REFERENCE.weighted_moments(
        vals, weights
    )


@needs_numpy
def test_weighted_moments_ragged_tail_blocks():
    # Exact 64-block boundaries and every ragged width near them.
    for n in (1, 63, 64, 65, 127, 128, 129, 200):
        vals = [((index * 7919) % 101 - 50) / 3.0 for index in range(n)]
        weights = [((index * 104729) % 97 + 1) / 11.0 for index in range(n)]
        assert NUMPY.weighted_moments(
            vals, weights
        ) == REFERENCE.weighted_moments(vals, weights)


@needs_numpy
@settings(max_examples=120, deadline=None)
@given(vectors=word_vectors())
def test_word_algebra_bit_identical(vectors):
    assert NUMPY.fold_and(vectors) == REFERENCE.fold_and(vectors)
    assert NUMPY.fold_or(vectors) == REFERENCE.fold_or(vectors)
    first = vectors[0]
    assert NUMPY.popcount_blocks(first) == REFERENCE.popcount_blocks(first)
    assert NUMPY.popcount(first) == REFERENCE.popcount(first)


@needs_numpy
@settings(max_examples=120, deadline=None)
@given(runs=monomial_runs())
def test_merge_monomials_bit_identical(runs):
    first, second = runs
    assert NUMPY.merge_monomials(first, second) == REFERENCE.merge_monomials(
        first, second
    )


def test_fold_empty_vectors_raise():
    with pytest.raises(ValueError):
        REFERENCE.fold_and([])
    with pytest.raises(ValueError):
        REFERENCE.fold_or([])
    if NUMPY is not None:
        with pytest.raises(ValueError):
            NUMPY.fold_and([])
        with pytest.raises(ValueError):
            NUMPY.fold_or([])


# -- resolution & fallback ----------------------------------------------------


def test_python_tokens_resolve_to_reference():
    for token in ("python", "py", "reference", "off", "legacy", "0"):
        with kernels.backend(token) as resolved:
            assert resolved == kernels.MODE_PYTHON
            assert kernels.get_backend() is not None
            assert kernels.get_backend().name == "python"


@needs_numpy
def test_numpy_tokens_resolve_to_numpy():
    for token in ("numpy", "np", "fast", "on", "1"):
        with kernels.backend(token) as resolved:
            assert resolved == kernels.MODE_NUMPY
            assert kernels.get_backend().name == "numpy"


@contextmanager
def _captured_warnings():
    """Records emitted on the kernels logger, capture-agnostic."""
    records = []
    handler = logging.Handler()
    handler.emit = records.append
    logger = logging.getLogger("repro.core.kernels")
    logger.addHandler(handler)
    try:
        yield records
    finally:
        logger.removeHandler(handler)


def test_unknown_token_warns_and_falls_back_to_auto():
    before = kernels.active_backend()
    with _captured_warnings() as records:
        with kernels.backend("quantum") as resolved:
            assert resolved in (kernels.MODE_PYTHON, kernels.MODE_NUMPY)
    assert any("kernel_unknown" in r.getMessage() for r in records)
    assert kernels.active_backend() == before


def test_numpy_request_degrades_when_probe_fails(monkeypatch):
    monkeypatch.setattr(kernels, "_NUMPY_BACKEND", False)
    monkeypatch.setattr(kernels, "_NUMPY_ERROR", "ImportError: no numpy")
    with _captured_warnings() as records:
        with kernels.backend("numpy") as resolved:
            assert resolved == kernels.MODE_PYTHON
            assert kernels.get_backend().name == "python"
    assert any("kernel_fallback" in r.getMessage() for r in records)


def test_backend_context_restores_previous():
    before = kernels.active_backend()
    with kernels.backend("python"):
        assert kernels.active_backend() == "python"
        with kernels.backend("auto"):
            pass
        assert kernels.active_backend() == "python"
    assert kernels.active_backend() == before


def test_backend_gauge_tracks_active_backend():
    rendered = _metrics.REGISTRY.render()
    active = kernels.active_backend()
    assert (
        f'repro_kernel_backend{{backend="{active}"}} 1' in rendered
    )
    other = "python" if active == "numpy" else "numpy"
    assert f'repro_kernel_backend{{backend="{other}"}} 0' in rendered
