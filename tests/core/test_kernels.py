"""The kernel protocol's bit-identity contract, property-checked.

Every op of the accelerated backends (numpy, native) must equal the
pure-python reference backend *exactly* -- same floats (``==``, not
``approx``), same ints, same words -- on arbitrary inputs, including
ragged tail blocks where ``n_vals`` is not a multiple of 64.  Plus the
resolution layer: env-token mapping, graceful degrade, the context
manager, and the info gauge.
"""

import logging
import math
from array import array
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.kernels import PythonKernel, SPARSE_KINDS
from repro.core.kernels.masktable import full_row, int_to_row, row_int
from repro.core.kernels.reference import SPARSE_FORMS
from repro.core.val_funcs import (
    AbsoluteDifference,
    Disagreement,
    EuclideanDistance,
)
from repro.provenance.monoids import SumMonoid
from repro.observability import metrics as _metrics

REFERENCE = PythonKernel()

try:
    from repro.core.kernels.numpy_backend import NumpyKernel

    NUMPY = NumpyKernel()
except Exception:  # pragma: no cover - exercised only without numpy
    NUMPY = None

try:
    from repro.core.kernels.native_backend import NativeKernel

    NATIVE = NativeKernel()
except Exception:  # pragma: no cover - no toolchain in this env
    NATIVE = None

needs_numpy = pytest.mark.skipif(
    NUMPY is None, reason="numpy backend unavailable"
)
needs_native = pytest.mark.skipif(
    NATIVE is None, reason="native backend unavailable"
)

#: Every accelerated backend, as a pytest axis that skips cleanly when
#: the backend cannot exist in this environment.
BACKENDS = [
    pytest.param("numpy", marks=needs_numpy),
    pytest.param("native", marks=needs_native),
]


def backend_of(name):
    return {"numpy": NUMPY, "native": NATIVE}[name]


# Finite doubles whose products/sums stay finite across a dozen terms.
values = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
positive_weights = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@st.composite
def fold_cases(draw):
    # Sizes straddle the 64-bit word boundary so ragged tail blocks,
    # exact multiples and sub-word masks are all exercised.
    n_vals = draw(st.integers(min_value=1, max_value=200))
    n_terms = draw(st.integers(min_value=0, max_value=10))
    masks = [
        (
            draw(values),
            int_to_row(draw(st.integers(0, (1 << n_vals) - 1)), n_vals),
        )
        for _ in range(n_terms)
    ]
    wanted = draw(
        st.one_of(st.none(), st.integers(0, (1 << n_vals) - 1))
    )
    if wanted is not None:
        wanted = int_to_row(wanted, n_vals)
    return n_vals, masks, wanted


@st.composite
def scatter_cases(draw):
    n_rows = draw(st.integers(min_value=0, max_value=12))
    n_vals = draw(st.integers(min_value=1, max_value=200))
    n_entries = draw(st.integers(min_value=0, max_value=10))
    entries = []
    for _ in range(n_entries):
        rows = draw(
            st.lists(
                st.integers(0, n_rows - 1), min_size=0, max_size=5
            )
            if n_rows
            else st.just([])
        )
        positions = draw(
            st.lists(st.integers(0, n_vals - 1), min_size=0, max_size=6)
        )
        entries.append((rows, positions))
    return n_rows, n_vals, entries


@st.composite
def sparse_cases(draw):
    n_vals = draw(st.integers(min_value=0, max_value=80))
    column = st.lists(values, min_size=n_vals, max_size=n_vals)
    base = draw(column)
    minus = [draw(column) for _ in range(draw(st.integers(0, 3)))]
    contribs = [
        (draw(column), draw(column))
        for _ in range(draw(st.integers(0, 3)))
    ]
    weights = draw(
        st.lists(positive_weights, min_size=n_vals, max_size=n_vals)
    )
    kind = draw(st.sampled_from(sorted(SPARSE_KINDS)))
    return base, minus, contribs, weights, kind


@st.composite
def word_vectors(draw):
    n_words = draw(st.integers(min_value=1, max_value=8))
    n_vectors = draw(st.integers(min_value=1, max_value=6))
    word = st.integers(min_value=0, max_value=(1 << 64) - 1)
    return [
        array("Q", [draw(word) for _ in range(n_words)])
        for _ in range(n_vectors)
    ]


@st.composite
def monomial_runs(draw):
    def run():
        ids = sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=50), max_size=8
                )
            )
        )
        return [
            (ann_id, draw(st.integers(min_value=1, max_value=5)))
            for ann_id in ids
        ]

    return run(), run()


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=120, deadline=None)
@given(case=fold_cases())
def test_fold_max_bit_identical(name, case):
    n_vals, masks, wanted = case
    # MAX folds consume masks in descending value order (the scorers
    # presort every group); the contract is defined over that order.
    masks = sorted(masks, key=lambda entry: -entry[0])
    assert backend_of(name).fold_max(
        masks, n_vals, wanted
    ) == REFERENCE.fold_max(masks, n_vals, wanted)


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=120, deadline=None)
@given(case=fold_cases())
def test_fold_sum_bit_identical(name, case):
    n_vals, masks, wanted = case
    assert backend_of(name).fold_sum(
        masks, n_vals, wanted
    ) == REFERENCE.fold_sum(masks, n_vals, wanted)


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(case=fold_cases(), is_max=st.booleans(), n_groups=st.integers(1, 4))
def test_baseline_scatter_matches_standalone_folds(name, case, is_max, n_groups):
    n_vals, masks, _ = case
    if is_max:
        masks = sorted(masks, key=lambda entry: -entry[0])
    # Same masks under several group keys: the shared unpack memo must
    # not leak state between groups.
    groups = [(f"g{index}", masks) for index in range(n_groups)]
    assert backend_of(name).baseline_scatter(
        groups, n_vals, is_max
    ) == REFERENCE.baseline_scatter(groups, n_vals, is_max)


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(case=fold_cases(), is_max=st.booleans(), splits=st.lists(st.integers(0, 10), max_size=4))
def test_group_fold_matches_standalone_folds(name, case, is_max, splits):
    n_vals, masks, wanted = case
    if is_max:
        masks = sorted(masks, key=lambda entry: -entry[0])
    # Ragged groups sliced from one term pool -- empty groups included,
    # terms repeating across groups -- each column must equal its own
    # standalone fold.
    groups = [masks[: min(size, len(masks))] for size in splits]
    backend = backend_of(name)
    batched = backend.group_fold(groups, n_vals, is_max, wanted)
    fold = REFERENCE.fold_max if is_max else REFERENCE.fold_sum
    # Columns may come back as array('d'); compare values bit for bit.
    assert [list(col) for col in batched] == [
        fold(g, n_vals, wanted) for g in groups
    ]


@pytest.mark.parametrize("name", BACKENDS)
def test_group_fold_memo_keyed_by_n_vals(name):
    # One backend instance serves every scorer in the process, and its
    # cross-call unpack memo outlives any single n_vals.  A one-word
    # dead row has identical *bytes* at n_vals=7 and n_vals=21; the
    # memo must not serve the 7-position vector to the 21-val fold.
    backend = backend_of(name)
    row = array("Q", [0b1010101])
    masks = [(2.5, row)]
    for n_vals in (7, 21, 7):
        for is_max in (True, False):
            batched = backend.group_fold([masks], n_vals, is_max)
            fold = REFERENCE.fold_max if is_max else REFERENCE.fold_sum
            assert [list(col) for col in batched] == [
                fold(masks, n_vals)
            ]


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=100, deadline=None)
@given(case=scatter_cases())
def test_scatter_false_sets_bit_identical(name, case):
    n_rows, n_vals, entries = case
    ours = backend_of(name).scatter_false_sets(n_rows, entries, n_vals)
    ref = REFERENCE.scatter_false_sets(n_rows, entries, n_vals)
    assert ours.n_rows == ref.n_rows == n_rows
    assert ours.n_vals == ref.n_vals == n_vals
    assert ours.words.tobytes() == ref.words.tobytes()


@settings(max_examples=100, deadline=None)
@given(case=scatter_cases())
def test_reference_scatter_matches_bigint_shifts(case):
    # The reference scatter is itself pinned to the pre-kernel bigint
    # semantics: row r's int is the OR of ``1 << position`` over every
    # entry listing r.
    n_rows, n_vals, entries = case
    expected = [0] * n_rows
    for rows, positions in entries:
        for row in rows:
            for position in positions:
                expected[row] |= 1 << position
    table = REFERENCE.scatter_false_sets(n_rows, entries, n_vals)
    assert table.row_ints() == expected


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=120, deadline=None)
@given(case=sparse_cases())
def test_sparse_scores_bit_identical(name, case):
    base, minus, contribs, weights, kind = case
    assert backend_of(name).sparse_scores(
        base, minus, contribs, weights, kind
    ) == REFERENCE.sparse_scores(base, minus, contribs, weights, kind)


@pytest.mark.parametrize(
    "val_func, kind",
    [
        (EuclideanDistance(SumMonoid()), "sqdiff"),
        (AbsoluteDifference(SumMonoid()), "absdiff"),
        (Disagreement(SumMonoid()), "isclose01"),
    ],
)
@settings(max_examples=200, deadline=None)
@given(original=values, summary=values, total=values)
def test_sparse_forms_pin_val_func_decomposition(
    val_func, kind, original, summary, total
):
    # The kernel's closed forms must stay bitwise equal to the
    # VAL-FUNCs' own metric_contrib/metric_finish -- the sparse kernel
    # path substitutes one for the other.
    assert val_func.contrib_kind == kind
    contrib, finish = SPARSE_FORMS[kind]
    assert contrib(original, summary) == val_func.metric_contrib(
        original, summary
    )
    assert finish(total) == val_func.metric_finish(total)
    assert finish(abs(total)) == val_func.metric_finish(abs(total))


def test_sparse_isclose_edge_cases():
    contrib, _ = SPARSE_FORMS["isclose01"]
    inf = float("inf")
    nan = float("nan")
    for original, summary in [
        (inf, inf),
        (-inf, -inf),
        (inf, -inf),
        (inf, 1.0),
        (nan, nan),
        (nan, 0.0),
        (1e308, -1e308),
        (0.0, -0.0),
        (1.0, 1.0 + 1e-12),
        (1.0, 1.5),
    ]:
        expected = 0.0 if math.isclose(original, summary) else 1.0
        assert contrib(original, summary) == expected
        for backend in (NUMPY, NATIVE):
            if backend is None:
                continue
            accs, wf, total = backend.sparse_scores(
                [0.0], [], [([original], [summary])], [1.0], "isclose01"
            )
            assert accs == [expected]


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=120, deadline=None)
@given(
    pairs=st.lists(st.tuples(values, positive_weights), max_size=200)
)
def test_weighted_moments_bit_identical(name, pairs):
    vals = [value for value, _ in pairs]
    weights = [weight for _, weight in pairs]
    assert backend_of(name).weighted_moments(
        vals, weights
    ) == REFERENCE.weighted_moments(vals, weights)


@pytest.mark.parametrize("name", BACKENDS)
def test_weighted_moments_ragged_tail_blocks(name):
    # Exact 64-block boundaries and every ragged width near them.
    for n in (1, 63, 64, 65, 127, 128, 129, 200):
        vals = [((index * 7919) % 101 - 50) / 3.0 for index in range(n)]
        weights = [((index * 104729) % 97 + 1) / 11.0 for index in range(n)]
        assert backend_of(name).weighted_moments(
            vals, weights
        ) == REFERENCE.weighted_moments(vals, weights)


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=120, deadline=None)
@given(vectors=word_vectors())
def test_word_algebra_bit_identical(name, vectors):
    backend = backend_of(name)
    assert backend.fold_and(vectors) == REFERENCE.fold_and(vectors)
    assert backend.fold_or(vectors) == REFERENCE.fold_or(vectors)
    first = vectors[0]
    assert backend.popcount_blocks(first) == REFERENCE.popcount_blocks(first)
    assert backend.popcount(first) == REFERENCE.popcount(first)


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=120, deadline=None)
@given(
    mask=st.integers(min_value=0), n_vals=st.integers(min_value=1, max_value=200)
)
def test_fold_not_bit_identical_and_tail_clamped(name, mask, n_vals):
    row = int_to_row(mask % (1 << n_vals), n_vals)
    ours = backend_of(name).fold_not(row, n_vals)
    ref = REFERENCE.fold_not(row, n_vals)
    assert ours == ref
    assert row_int(ref) == (~row_int(row)) & row_int(full_row(n_vals))


@pytest.mark.parametrize("name", BACKENDS)
@settings(max_examples=120, deadline=None)
@given(runs=monomial_runs())
def test_merge_monomials_bit_identical(name, runs):
    first, second = runs
    assert backend_of(name).merge_monomials(
        first, second
    ) == REFERENCE.merge_monomials(first, second)


def test_fold_empty_vectors_raise():
    for backend in (REFERENCE, NUMPY, NATIVE):
        if backend is None:
            continue
        with pytest.raises(ValueError):
            backend.fold_and([])
        with pytest.raises(ValueError):
            backend.fold_or([])


# -- resolution & fallback ----------------------------------------------------


def test_python_tokens_resolve_to_reference():
    for token in ("python", "py", "reference", "off", "legacy", "0"):
        with kernels.backend(token) as resolved:
            assert resolved == kernels.MODE_PYTHON
            assert kernels.get_backend() is not None
            assert kernels.get_backend().name == "python"


@needs_numpy
def test_numpy_tokens_resolve_to_numpy():
    for token in ("numpy", "np", "fast", "on", "1"):
        with kernels.backend(token) as resolved:
            assert resolved == kernels.MODE_NUMPY
            assert kernels.get_backend().name == "numpy"


@needs_native
def test_native_tokens_resolve_to_native():
    for token in ("native", "c", "simd"):
        with kernels.backend(token) as resolved:
            assert resolved == kernels.MODE_NATIVE
            assert kernels.get_backend().name == "native"


def test_auto_never_resolves_to_native():
    # ``auto`` is numpy-or-python: an implicit compile on import would
    # surprise operators, so native stays opt-in.
    with kernels.backend("auto") as resolved:
        assert resolved in (kernels.MODE_PYTHON, kernels.MODE_NUMPY)


@contextmanager
def _captured_warnings():
    """Records emitted on the kernels logger, capture-agnostic."""
    records = []
    handler = logging.Handler()
    handler.emit = records.append
    logger = logging.getLogger("repro.core.kernels")
    logger.addHandler(handler)
    try:
        yield records
    finally:
        logger.removeHandler(handler)


def test_unknown_token_warns_and_falls_back_to_auto():
    before = kernels.active_backend()
    with _captured_warnings() as records:
        with kernels.backend("quantum") as resolved:
            assert resolved in (kernels.MODE_PYTHON, kernels.MODE_NUMPY)
    assert any("kernel_unknown" in r.getMessage() for r in records)
    assert kernels.active_backend() == before


def test_numpy_request_degrades_when_probe_fails(monkeypatch):
    monkeypatch.setattr(kernels, "_NUMPY_BACKEND", False)
    monkeypatch.setattr(kernels, "_NUMPY_ERROR", "ImportError: no numpy")
    with _captured_warnings() as records:
        with kernels.backend("numpy") as resolved:
            assert resolved == kernels.MODE_PYTHON
            assert kernels.get_backend().name == "python"
    assert any("kernel_fallback" in r.getMessage() for r in records)


def test_native_request_degrades_when_probe_fails(monkeypatch):
    monkeypatch.setattr(kernels, "_NATIVE_BACKEND", False)
    monkeypatch.setattr(
        kernels, "_NATIVE_ERROR", "NativeBuildError: no C compiler on PATH"
    )
    with _captured_warnings() as records:
        with kernels.backend("native") as resolved:
            assert resolved in (kernels.MODE_PYTHON, kernels.MODE_NUMPY)
            assert kernels.get_backend().name == resolved
    messages = [r.getMessage() for r in records]
    assert any(
        "kernel_fallback" in message and "requested=native" in message
        for message in messages
    )


def test_native_request_degrades_to_python_without_numpy(monkeypatch):
    monkeypatch.setattr(kernels, "_NATIVE_BACKEND", False)
    monkeypatch.setattr(kernels, "_NATIVE_ERROR", "NativeBuildError: nope")
    monkeypatch.setattr(kernels, "_NUMPY_BACKEND", False)
    monkeypatch.setattr(kernels, "_NUMPY_ERROR", "ImportError: no numpy")
    with _captured_warnings() as records:
        with kernels.backend("native") as resolved:
            assert resolved == kernels.MODE_PYTHON
            assert kernels.get_backend().name == "python"
    assert any(
        "kernel_fallback" in r.getMessage()
        and "active=python" in r.getMessage()
        for r in records
    )


def test_backend_context_restores_previous():
    before = kernels.active_backend()
    with kernels.backend("python"):
        assert kernels.active_backend() == "python"
        with kernels.backend("auto"):
            pass
        assert kernels.active_backend() == "python"
    assert kernels.active_backend() == before


def test_backend_gauge_tracks_active_backend():
    rendered = _metrics.REGISTRY.render()
    active = kernels.active_backend()
    assert (
        f'repro_kernel_backend{{backend="{active}"}} 1' in rendered
    )
    for other in ("python", "numpy", "native"):
        if other == active:
            continue
        assert f'repro_kernel_backend{{backend="{other}"}} 0' in rendered
