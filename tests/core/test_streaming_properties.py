"""Hypothesis properties for the streaming-repair building blocks.

Two obligations, each over random instances and random delta splits:

* **Equivalence-partition repair is exact.**  For any valuation set,
  any way of splitting it into a base class plus a delta (false-set
  extensions of existing valuations + appended fresh valuations), the
  incremental :meth:`EquivalencePartition.repair` -- and its
  :func:`equivalence_classes(..., previous=, flipped=)` front door --
  must bucket annotations exactly like a full signature recompute over
  the final class.  This is the Prop 4.2.1 locality argument run in
  reverse: a signature can only change where the delta flipped truth.

* **Pool-ingest invalidation is sound.**  After
  :meth:`CandidatePool.ingest` maintains a carried candidate list
  across an arbitrary add/remove delta, serving the pool must be
  indistinguishable from a fresh ``enumerate_candidates`` call on the
  post-delta expression: same candidates, same order, same shared-RNG
  consumption.  In particular no stale entry survives -- every carried
  candidate whose seed pair mentions a removed annotation is dropped,
  and every ``arity > 2`` chain a new annotation would join is
  re-proposed (checked here structurally, not just by count).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AllowAll, enumerate_candidates
from repro.core.equivalence import EquivalencePartition, equivalence_classes
from repro.core.pool import CandidatePool
from repro.provenance import (
    SUM,
    Annotation,
    AnnotationUniverse,
    TensorSum,
    Term,
)
from repro.provenance.valuation import cancel

NAMES = tuple(f"a{i}" for i in range(6))


@st.composite
def valuation_deltas(draw):
    """(base valuations, final valuations, flipped map).

    The base class is a prefix of the final class with some false sets
    extended -- exactly the shape ``extend_valuations`` produces.
    """
    n_base = draw(st.integers(min_value=1, max_value=5))
    base = []
    for index in range(n_base):
        false = draw(st.lists(st.sampled_from(NAMES), unique=True, max_size=4))
        base.append(cancel(false, label=f"v{index}"))

    final = []
    flipped = {}
    for valuation in base:
        extra = draw(
            st.lists(
                st.sampled_from(NAMES).filter(
                    lambda n, v=valuation: n not in v.false_set()
                ),
                unique=True,
                max_size=3,
            )
        )
        if extra:
            final.append(valuation.cancelling(extra))
            flipped[str(valuation)] = tuple(sorted(extra))
        else:
            final.append(valuation)
    n_fresh = draw(st.integers(min_value=0, max_value=3))
    for index in range(n_fresh):
        false = draw(st.lists(st.sampled_from(NAMES), unique=True, max_size=4))
        final.append(cancel(false, label=f"fresh{index}"))
    return base, final, flipped


@settings(max_examples=60, deadline=None)
@given(data=valuation_deltas())
def test_partition_repair_matches_full_recompute(data):
    base, final, flipped = data
    names = list(NAMES)
    full = EquivalencePartition.build(names, final)
    previous = EquivalencePartition.build(names, base)
    repaired = previous.repair(names, final, flipped)
    assert repaired.signatures == full.signatures
    assert repaired.classes(names) == full.classes(names)
    assert equivalence_classes(
        names, final, previous=previous, flipped=flipped
    ) == equivalence_classes(names, final)


@settings(max_examples=60, deadline=None)
@given(data=valuation_deltas())
def test_repair_falls_back_when_prefix_invariant_breaks(data):
    """Relabeled old valuations violate the label-prefix invariant, so
    repair must fall back to a full rebuild (never trust stale bits)."""
    base, final, flipped = data
    names = list(NAMES)
    previous = EquivalencePartition.build(names, base)
    relabeled = [
        type(v)(v.assignment, v.default, v.weight, f"renamed {v.label}")
        for v in final
    ]
    repaired = previous.repair(names, relabeled, flipped)
    assert repaired.signatures == EquivalencePartition.build(names, relabeled).signatures


@settings(max_examples=60, deadline=None)
@given(data=valuation_deltas())
def test_repair_tolerates_overapproximate_flip_map(data):
    """A flip map may name untouched annotations or unknown labels (an
    over-approximation is always sound); the repair must stay exact."""
    base, final, flipped = data
    names = list(NAMES)
    noisy = dict(flipped)
    for label in list(noisy) + ["no such valuation"]:
        noisy[label] = tuple(NAMES)
    previous = EquivalencePartition.build(names, base)
    repaired = previous.repair(names, final, noisy)
    assert repaired.signatures == EquivalencePartition.build(names, final).signatures


# -- pool ingest ---------------------------------------------------------------


def build_pool_instance(seed, n_users=8, n_terms=14):
    rng = random.Random(seed)
    universe = AnnotationUniverse()
    names = []
    for index in range(n_users):
        name = f"u{index}"
        names.append(name)
        universe.register(
            Annotation(name, "user", {"g": rng.choice("AB"), "r": rng.choice("XY")})
        )
    terms = [
        Term(
            tuple(rng.sample(names, rng.choice([1, 1, 2]))),
            float(rng.randint(0, 5)),
            group=rng.choice(["g0", "g1", None]),
        )
        for _ in range(n_terms)
    ]
    return universe, names, TensorSum(terms, SUM)


def apply_streaming_delta(universe, expression, rng, n_add, n_remove):
    """A post-delta expression: drop every term mentioning ``n_remove``
    existing annotations, add terms over ``n_add`` fresh ones."""
    present = sorted(expression.annotation_names())
    removed = rng.sample(present, min(n_remove, max(len(present) - 2, 0)))
    kept = [
        term
        for term in expression.terms
        if not set(term.annotations).intersection(removed)
    ]
    fresh = []
    for index in range(n_add):
        name = f"w{index}"
        if name not in universe:
            universe.register(
                Annotation(
                    name, "user", {"g": rng.choice("AB"), "r": rng.choice("XY")}
                )
            )
        fresh.append(name)
    survivors = sorted(expression.annotation_names().difference(removed))
    new_terms = list(kept)
    for name in fresh:
        partner = rng.choice(survivors) if survivors else name
        new_terms.append(
            Term((name, partner) if partner != name else (name,), 1.0, group="g0")
        )
    if not new_terms:
        new_terms = [Term((fresh[0],), 1.0)] if fresh else list(expression.terms)
    return TensorSum(new_terms, expression.monoid), frozenset(removed)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    arity=st.sampled_from([2, 3]),
    cap=st.sampled_from([None, 6]),
    n_add=st.integers(min_value=0, max_value=3),
    n_remove=st.integers(min_value=0, max_value=3),
)
def test_pool_ingest_matches_fresh_enumeration(seed, arity, cap, n_add, n_remove):
    universe, _, expression = build_pool_instance(seed)
    rng = random.Random(seed ^ 0xBEEF)
    pool_rng = random.Random(4242)
    pool = CandidatePool(universe, AllowAll(), arity=arity, cap=cap, rng=pool_rng)
    pool.candidates(expression)

    new_expression, removed = apply_streaming_delta(
        universe, expression, rng, n_add, n_remove
    )
    carried = pool.raw_snapshot(expression)
    invalidated = pool.ingest(new_expression)

    stale = [c for c in carried if removed.intersection(c.parts)]
    assert invalidated >= len(stale)
    # Soundness: no candidate whose parts mention a removed annotation
    # survives into the maintained list.
    maintained_raw = pool.raw_snapshot(new_expression)
    assert maintained_raw is not None, "ingest invalidated instead of maintaining"
    assert not any(
        removed.intersection(candidate.parts) for candidate in maintained_raw
    )

    fresh_rng = random.Random()
    fresh_rng.setstate(pool_rng.getstate())
    served = pool.candidates(new_expression)
    fresh = enumerate_candidates(
        new_expression, universe, AllowAll(), arity=arity, cap=cap, rng=fresh_rng
    )
    assert [(c.parts, c.proposal.label) for c in served] == [
        (c.parts, c.proposal.label) for c in fresh
    ]
    assert pool_rng.getstate() == fresh_rng.getstate(), "RNG consumption differs"
    assert pool.maintained_steps == 1 and pool.rebuilt_steps == 1


def test_pool_ingest_on_cold_pool_is_a_noop():
    universe, _, expression = build_pool_instance(3)
    pool = CandidatePool(universe, AllowAll())
    assert pool.ingest(expression) == 0
    assert pool.raw_snapshot(expression) is None
