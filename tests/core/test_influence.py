"""Influence analysis over provenance expressions."""

import pytest

from repro.core import EuclideanDistance
from repro.core.influence import (
    annotation_influence,
    group_influence,
    rank_influential,
)
from repro.provenance import MAX, Annotation, AnnotationUniverse, TensorSum, Term


def test_annotation_influence(match_point):
    influences = annotation_influence(match_point, EuclideanDistance(MAX))
    # U2 holds the max (5 vs 3): cancelling it drops the rating by 2.
    assert influences["U2"] == pytest.approx(2.0)
    # U1 and U3 are shadowed by U2's 5: zero influence.
    assert influences["U1"] == 0.0
    assert influences["U3"] == 0.0


def test_rank_influential(match_point):
    influences = annotation_influence(match_point, EuclideanDistance(MAX))
    ranked = rank_influential(influences)
    assert ranked[0] == ("U2", pytest.approx(2.0))
    assert rank_influential(influences, top=1) == ranked[:1]
    # Ties break by name.
    assert [name for name, _ in ranked[1:]] == ["U1", "U3"]


def test_group_influence(thesis_universe, thesis_movies):
    influences = group_influence(
        thesis_movies, EuclideanDistance(MAX), thesis_universe, "gender"
    )
    # Cancelling the females (U1, U2) drops MatchPoint 5->3 and
    # BlueJasmine 4->0: sqrt(4 + 16).
    assert influences["F"] == pytest.approx((4 + 16) ** 0.5)
    # The male U3 is shadowed.
    assert influences["M"] == 0.0


def test_group_influence_skips_absent_groups():
    universe = AnnotationUniverse()
    universe.register(Annotation("a", "user", {"g": "x"}))
    universe.register(Annotation("b", "user", {"g": "y"}))
    expression = TensorSum([Term(("a",), 2.0, group="m")], MAX)
    influences = group_influence(
        expression, EuclideanDistance(MAX), universe, "g"
    )
    assert set(influences) == {"x"}


def test_subset_of_annotations(match_point):
    influences = annotation_influence(
        match_point, EuclideanDistance(MAX), annotations=["U2"]
    )
    assert set(influences) == {"U2"}


def test_summaries_with_high_wdist_protect_influential_annotations():
    """Algorithm 1 with wDist = 1 avoids merging the influential
    annotation into groups whose φ-lift would mask its cancellation."""
    from repro.core import (
        DomainCombiners,
        DomainConstraints,
        SharedAttribute,
        SummarizationConfig,
        SummarizationProblem,
        Summarizer,
    )
    from repro.provenance import CancelSingleAnnotation

    universe = AnnotationUniverse()
    # u_star holds the max everywhere; all users share an attribute.
    for name, rating in (("u_star", 5.0), ("u1", 3.0), ("u2", 3.0), ("u3", 2.0)):
        universe.register(Annotation(name, "user", {"g": "same"}))
    expression = TensorSum(
        [
            Term(("u_star",), 5.0, group="m"),
            Term(("u1",), 3.0, group="m"),
            Term(("u2",), 3.0, group="m"),
            Term(("u3",), 2.0, group="m"),
        ],
        MAX,
    )
    problem = SummarizationProblem(
        expression=expression,
        universe=universe,
        valuations=CancelSingleAnnotation(universe, domains=("user",)),
        val_func=EuclideanDistance(MAX),
        combiners=DomainCombiners(),
        constraint=DomainConstraints({"user": SharedAttribute(("g",))}),
    )
    result = Summarizer(
        problem,
        SummarizationConfig(w_dist=1.0, max_steps=2, group_equivalent_first=False),
    ).run()
    # The influential u_star stays unmerged; the shadowed users merge.
    for merged_group in result.summary_groups().values():
        assert "u_star" not in merged_group
