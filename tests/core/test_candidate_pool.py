"""Property suite for cross-step candidate-pool maintenance (core.pool).

Two obligations, each over a randomized instance grid:

* the maintained pool is *identical* -- same candidates, same order,
  same shared-RNG consumption -- to a fresh ``enumerate_candidates``
  call after every applied merge, including the ``arity > 2`` greedy
  extension/dedupe and the ``cap=`` subsampling interplay;
* the engine's delta-carried candidate measurements match a fresh
  re-scoring: sizes exactly, distances within the documented 1e-9
  float-association tolerance (the engine's ``refresh_near`` band).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AllowAll,
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    MappingState,
    SummarizationConfig,
    SummarizationProblem,
    enumerate_candidates,
)
from repro.core.constraints import SharedAttribute
from repro.core.engine import ScoringEngine
from repro.core.fast_distance import IncrementalStepScorer
from repro.core.pool import CandidatePool
from repro.provenance import (
    MAX,
    SUM,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    TensorSum,
    Term,
)

CONSTRAINTS = {
    "allow_all": AllowAll,
    "shared_attribute": SharedAttribute,
}


def pool_problem(seed, monoid=SUM, n_users=7, n_items=3, n_terms=16):
    """A two-domain instance whose attributes make SharedAttribute
    selective (so arity > 2 chains accept and reject members)."""
    rng = random.Random(seed)
    universe = AnnotationUniverse()
    names = []
    for index in range(n_users):
        name = f"u{index}"
        names.append(name)
        universe.register(
            Annotation(name, "user", {"g": rng.choice("AB"), "r": rng.choice("XY")})
        )
    for index in range(n_items):
        name = f"i{index}"
        names.append(name)
        universe.register(
            Annotation(name, "item", {"g": rng.choice("AB"), "r": rng.choice("XY")})
        )
    terms = []
    for _ in range(n_terms):
        annotations = tuple(rng.sample(names, rng.choice([1, 1, 2])))
        terms.append(
            Term(
                annotations,
                float(rng.randint(0, 5)),
                group=rng.choice(["g0", "g1", None]),
            )
        )
    expression = TensorSum(terms, monoid)
    return SummarizationProblem(
        expression=expression,
        universe=universe,
        valuations=CancelSingleAnnotation(universe, domains=("user",)),
        val_func=EuclideanDistance(monoid),
        combiners=DomainCombiners(),
        constraint=AllowAll(),
        description=f"pool seed={seed}",
    )


def candidate_keys(candidates):
    return [(c.parts, c.proposal.label, c.proposal.concept) for c in candidates]


def drive_merges(problem, constraint, arity, cap, n_steps, pick_seed):
    """Apply ``n_steps`` merges, comparing the maintained pool against
    a fresh enumeration (with a state-cloned RNG) at every step."""
    universe = problem.universe
    pool_rng = random.Random(4242)
    pool = CandidatePool(
        universe, constraint, arity=arity, cap=cap, rng=pool_rng
    )
    picker = random.Random(pick_seed)
    current = problem.expression
    for _ in range(n_steps):
        fresh_rng = random.Random()
        fresh_rng.setstate(pool_rng.getstate())
        maintained = pool.candidates(current)
        fresh = enumerate_candidates(
            current, universe, constraint, arity=arity, cap=cap, rng=fresh_rng
        )
        assert candidate_keys(maintained) == candidate_keys(fresh)
        assert pool_rng.getstate() == fresh_rng.getstate(), "RNG consumption differs"
        if not maintained:
            break
        chosen = picker.choice(maintained)
        summary = universe.new_summary(
            [universe[name] for name in chosen.parts],
            label=chosen.proposal.label,
            concept=chosen.proposal.concept,
        )
        current = current.apply_mapping(
            {name: summary.name for name in chosen.parts}
        )
        pool.advance(chosen.parts, summary.name, current)
    return pool


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    arity=st.sampled_from([2, 3, 4]),
    cap=st.sampled_from([None, 6]),
    constraint_name=st.sampled_from(sorted(CONSTRAINTS)),
)
def test_pool_matches_fresh_enumeration(seed, arity, cap, constraint_name):
    problem = pool_problem(seed)
    pool = drive_merges(
        problem,
        CONSTRAINTS[constraint_name](),
        arity=arity,
        cap=cap,
        n_steps=4,
        pick_seed=seed ^ 0x5A5A,
    )
    assert pool.maintained_steps >= 1, "the carry never engaged"


@pytest.mark.parametrize("arity", [2, 3])
def test_pool_explicit_rng_grid(arity):
    """Deterministic smoke over a fixed grid (no hypothesis shrinking)."""
    for seed in (0, 7, 42, 99):
        problem = pool_problem(seed)
        drive_merges(
            problem, AllowAll(), arity=arity, cap=5, n_steps=5, pick_seed=seed
        )


def test_child_pool_branches_match_fresh():
    """Beam-style branching: two children advanced past different
    merges from the same parent must both match fresh enumeration."""
    problem = pool_problem(11)
    universe = problem.universe
    pool = CandidatePool(universe, AllowAll(), arity=3)
    current = problem.expression
    candidates = pool.candidates(current)
    assert len(candidates) >= 2
    for chosen in (candidates[0], candidates[-1]):
        summary = universe.new_summary(
            [universe[name] for name in chosen.parts],
            label=chosen.proposal.label,
        )
        expression = current.apply_mapping(
            {name: summary.name for name in chosen.parts}
        )
        child = pool.child(chosen.parts, summary.name, expression)
        assert candidate_keys(child.candidates(expression)) == candidate_keys(
            enumerate_candidates(expression, universe, AllowAll(), arity=3)
        )
    # The parent pool is untouched by its children.
    assert candidate_keys(pool.candidates(current)) == candidate_keys(
        enumerate_candidates(current, universe, AllowAll(), arity=3)
    )


def test_pool_invalidate_recovers():
    problem = pool_problem(5)
    pool = CandidatePool(problem.universe, AllowAll())
    current = problem.expression
    first = pool.candidates(current)
    pool.invalidate()
    assert candidate_keys(pool.candidates(current)) == candidate_keys(first)
    assert pool.rebuilt_steps == 2
    assert pool.maintained_steps == 0


def test_pool_rebuilds_on_foreign_expression():
    """Handing the pool an expression it was not advanced to must fall
    back to a fresh enumeration, not serve the stale list."""
    problem = pool_problem(5)
    pool = CandidatePool(problem.universe, AllowAll())
    pool.candidates(problem.expression)
    other = pool_problem(6)
    fresh = pool.candidates(other.expression)
    assert candidate_keys(fresh) == candidate_keys(
        enumerate_candidates(other.expression, problem.universe, AllowAll())
    )
    assert pool.rebuilt_steps == 2


# -- growing interner vs. dedupe ---------------------------------------------------


def test_dedupe_never_grows_the_interner():
    """Regression: ``_dedupe`` used to key on ``interner.intern``, which
    allocated ids for every candidate part -- including on the pool's
    invalidate-on-failure fallback.  With streaming ingest the universe
    is no longer static, so dedupe must use non-inserting lookups and
    key unknown names on themselves."""
    from repro.core.candidates import finalize_candidates
    from repro.provenance.ir import AnnotationInterner

    problem = pool_problem(21)
    raw = enumerate_candidates(
        problem.expression, problem.universe, AllowAll(), arity=3
    )
    assert raw, "instance produced no candidates"

    # Interner knows only a strict subset of the names in play.
    known = sorted({name for c in raw for name in c.parts})[: len(raw) // 2 or 1]
    interner = AnnotationInterner(known)
    size_before = len(interner)

    with_interner = finalize_candidates(list(raw), 3, None, None, interner)
    without = finalize_candidates(list(raw), 3, None, None, None)

    assert len(interner) == size_before, "dedupe allocated interner ids"
    assert candidate_keys(with_interner) == candidate_keys(without)


def test_dedupe_mixed_known_unknown_names_still_exact():
    """Duplicates must collapse even when one copy's parts are interned
    and another's are not known to the interner at all."""
    from repro.core.candidates import finalize_candidates
    from repro.provenance.ir import AnnotationInterner

    problem = pool_problem(22)
    raw = enumerate_candidates(
        problem.expression, problem.universe, AllowAll(), arity=4
    )
    doubled = list(raw) + list(raw)
    empty = AnnotationInterner()
    full = AnnotationInterner(
        sorted({name for c in raw for name in c.parts})
    )
    plain = finalize_candidates(list(doubled), 4, None, None, None)
    assert candidate_keys(
        finalize_candidates(list(doubled), 4, None, None, empty)
    ) == candidate_keys(plain)
    assert candidate_keys(
        finalize_candidates(list(doubled), 4, None, None, full)
    ) == candidate_keys(plain)
    assert len(empty) == 0


# -- carried measurements ≡ fresh re-scores ----------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    monoid=st.sampled_from([SUM, MAX]),
)
def test_carried_scores_match_fresh_rescoring(seed, monoid):
    """Drive the engine's delta carry for several steps; after each
    step every candidate measurement (carried or not) must match a
    fresh scorer built from scratch: sizes exactly, distances within
    the documented 1e-9 tolerance."""
    problem = pool_problem(seed, monoid=monoid)
    universe = problem.universe
    computer = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        universe,
    )
    engine = ScoringEngine(
        problem, SummarizationConfig(carry="on", parallelism=0), computer
    )
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    carried_steps = 0
    for _ in range(4):
        candidates = enumerate_candidates(current, universe, problem.constraint)
        if not candidates:
            break
        measured, _ = engine.measure(candidates, current, mapping)
        reference = IncrementalStepScorer(computer, current, mapping, universe)
        for entry in measured:
            ref_size, ref_estimate = reference.score(entry.candidate.parts)
            assert entry.size == ref_size, entry.candidate.parts
            assert entry.distance.value == pytest.approx(
                ref_estimate.value, abs=1e-9
            ), entry.candidate.parts
        carried_steps += 1 if engine.last_carried else 0
        chosen = measured[0]
        summary = universe.new_summary(
            [universe[name] for name in chosen.candidate.parts],
            label=chosen.candidate.proposal.label,
        )
        step_mapping = {name: summary.name for name in chosen.candidate.parts}
        current = current.apply_mapping(step_mapping)
        mapping = mapping.compose(step_mapping)
        engine.advance(chosen.candidate.parts, summary.name, current, mapping)
