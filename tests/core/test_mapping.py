"""Cumulative mapping state."""

from repro.core import MappingState


def test_starts_as_identity():
    mapping = MappingState(["a", "b"])
    assert mapping.is_identity()
    assert mapping["a"] == "a"
    assert mapping.as_dict() == {"a": "a", "b": "b"}


def test_compose_single_step():
    mapping = MappingState(["a", "b", "c"]).compose({"a": "x", "b": "x"})
    assert mapping["a"] == "x"
    assert mapping["b"] == "x"
    assert mapping["c"] == "c"
    assert not mapping.is_identity()


def test_compose_chains_through_summaries():
    mapping = (
        MappingState(["a", "b", "c"])
        .compose({"a": "x", "b": "x"})
        .compose({"x": "y", "c": "y"})
    )
    assert mapping.as_dict() == {"a": "y", "b": "y", "c": "y"}


def test_compose_is_pure():
    original = MappingState(["a", "b"])
    original.compose({"a": "x"})
    assert original.is_identity()


def test_current_names_and_preimage():
    mapping = MappingState(["a", "b", "c"]).compose({"a": "x", "b": "x"})
    assert mapping.current_names() == ("x", "c")
    assert mapping.preimage("x") == ("a", "b")
    assert mapping.preimage("c") == ("c",)
    assert mapping.preimage("unknown") == ()


def test_mapping_protocol():
    mapping = MappingState(["a"])
    assert len(mapping) == 1
    assert list(mapping) == ["a"]
    assert mapping.get("missing") is None
