"""VAL-FUNC implementations and vector alignment."""

import math

import pytest

from repro.core import (
    AbsoluteDifference,
    DDPCostDifference,
    Disagreement,
    EuclideanDistance,
    align_vector,
)
from repro.provenance import (
    MAX,
    SUM,
    CountedAggregate,
    DDPResult,
    TensorSum,
    Term,
)


class TestAlignVector:
    def test_folds_merged_groups(self):
        original = {
            "Adele": CountedAggregate(0.0, 1),
            "CelineDion": CountedAggregate(1.0, 1),
            "LoriBlack": CountedAggregate(1.0, 1),
        }
        alignment = {
            "Adele": "singer",
            "CelineDion": "singer",
            "LoriBlack": "guitarist",
        }
        aligned = align_vector(original, alignment, SUM)
        assert aligned["singer"].value == 1.0
        assert aligned["singer"].count == 2
        assert aligned["guitarist"].value == 1.0

    def test_unmapped_keys_pass_through(self):
        aligned = align_vector({"g": CountedAggregate(2.0, 1)}, {}, MAX)
        assert aligned == {"g": CountedAggregate(2.0, 1)}


class TestEuclidean:
    def test_example_5_2_1(self):
        """The worked Wikipedia distance computation of §5.2."""
        val_func = EuclideanDistance(SUM)
        original = {
            "Adele": CountedAggregate(0.0, 1),
            "CelineDion": CountedAggregate(0.0, 0),
            "LoriBlack": CountedAggregate(1.0, 1),
            "AlecBaillie": CountedAggregate(1.0, 1),
        }
        summary = {
            "guitarist": CountedAggregate(2.0, 2),
            "singer": CountedAggregate(1.0, 2),
        }
        alignment = {
            "Adele": "singer",
            "CelineDion": "singer",
            "LoriBlack": "guitarist",
            "AlecBaillie": "guitarist",
        }
        # Transformed original: (guitarist: 2, singer: 0); summary
        # (guitarist: 2, singer: 1) -> distance 1.
        assert val_func(original, summary, alignment) == pytest.approx(1.0)

    def test_missing_coordinates_are_zero(self):
        val_func = EuclideanDistance(MAX)
        assert val_func(
            {"a": CountedAggregate(3.0, 1)}, {}, {}
        ) == pytest.approx(3.0)

    def test_max_error_from_full_vector(self):
        expression = TensorSum(
            [Term(("u",), 3.0, group="a"), Term(("v",), 4.0, group="b")], MAX
        )
        assert EuclideanDistance(MAX).max_error(expression) == pytest.approx(5.0)


class TestAbsoluteDifference:
    def test_l1_semantics(self):
        val_func = AbsoluteDifference(MAX)
        original = {"a": CountedAggregate(3.0, 1), "b": CountedAggregate(1.0, 1)}
        summary = {"a": CountedAggregate(5.0, 2), "b": CountedAggregate(1.0, 1)}
        assert val_func(original, summary, {}) == pytest.approx(2.0)

    def test_scalar_case(self):
        val_func = AbsoluteDifference(MAX)
        assert val_func(
            {None: CountedAggregate(3.0, 1)}, {None: CountedAggregate(5.0, 2)}, {}
        ) == pytest.approx(2.0)


class TestDisagreement:
    def test_zero_when_equal(self):
        val_func = Disagreement(MAX)
        vector = {"a": CountedAggregate(3.0, 1)}
        assert val_func(vector, dict(vector), {}) == 0.0

    def test_one_when_any_coordinate_differs(self):
        val_func = Disagreement(MAX)
        assert val_func(
            {"a": CountedAggregate(3.0, 1)},
            {"a": CountedAggregate(4.0, 1)},
            {},
        ) == 1.0

    def test_max_error_is_one(self):
        expression = TensorSum([Term(("u",), 9.0, group="a")], MAX)
        assert Disagreement(MAX).max_error(expression) == 1.0


class TestDDPCostDifference:
    def setup_method(self):
        self.val_func = DDPCostDifference(10.0, 5)

    def test_both_feasible(self):
        assert self.val_func(DDPResult(4.0, True), DDPResult(6.5, True), {}) == 2.5

    def test_both_infeasible(self):
        assert (
            self.val_func(
                DDPResult(math.inf, False), DDPResult(math.inf, False), {}
            )
            == 0.0
        )

    def test_feasibility_mismatch_pays_maximum(self):
        assert self.val_func(DDPResult(4.0, True), DDPResult(math.inf, False), {}) == 50.0
        assert self.val_func(DDPResult(math.inf, False), DDPResult(0.0, True), {}) == 50.0

    def test_max_error(self):
        assert self.val_func.max_error(None) == 50.0
