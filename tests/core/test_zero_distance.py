"""Proposition 4.2.1: the minimal distance-0 summary, in PTIME."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    MappingState,
    minimal_zero_distance_summary,
)
from repro.provenance import (
    MAX,
    Annotation,
    AnnotationUniverse,
    CancelSingleAttribute,
    ExplicitValuations,
    TensorSum,
    Term,
    cancel,
)


def build(n_users=6, n_groups=2, seed_attrs=("x", "y", "x", "y", "x", "x")):
    universe = AnnotationUniverse()
    terms = []
    for index in range(n_users):
        universe.register(
            Annotation(f"u{index}", "user", {"g": seed_attrs[index % len(seed_attrs)]})
        )
        terms.append(
            Term((f"u{index}",), float(index % 4 + 1), group=f"m{index % n_groups}")
        )
    return universe, TensorSum(terms, MAX)


def test_merges_equivalence_classes_to_representatives():
    universe, expression = build()
    valuations = CancelSingleAttribute(universe, attributes=("g",))
    summary, step = minimal_zero_distance_summary(expression, valuations)
    # Class {u0,u2,u4,u5} (g=x) and {u1,u3} (g=y): representatives u0, u1.
    assert step == {"u2": "u0", "u4": "u0", "u5": "u0", "u3": "u1"}
    assert summary.annotation_names() == frozenset({"u0", "u1"})
    assert summary.size() < expression.size()


def test_distance_is_exactly_zero():
    universe, expression = build()
    valuations = CancelSingleAttribute(universe, attributes=("g",))
    summary, step = minimal_zero_distance_summary(expression, valuations)
    mapping = MappingState(sorted(expression.annotation_names())).compose(step)
    computer = DistanceComputer(
        expression, valuations, EuclideanDistance(MAX), DomainCombiners(), universe
    )
    assert computer.exact(summary, mapping).value == 0.0


def test_minimality():
    """No two annotations of the result are equivalent (the proof's
    injectivity argument): merging any further pair changes some
    valuation's outcome signature."""
    universe, expression = build()
    valuations = CancelSingleAttribute(universe, attributes=("g",))
    summary, _ = minimal_zero_distance_summary(expression, valuations)
    remaining = sorted(summary.annotation_names())
    valuation_list = list(valuations)
    signatures = {
        name: tuple(v.truth(name) for v in valuation_list) for name in remaining
    }
    assert len(set(signatures.values())) == len(remaining)


def test_noop_for_distinguishing_classes():
    universe, expression = build()
    valuations = ExplicitValuations(
        [cancel([f"u{i}"]) for i in range(6)]
    )
    summary, step = minimal_zero_distance_summary(expression, valuations)
    assert step == {}
    assert summary is expression


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200))
def test_property_distance_zero_on_random_instances(seed):
    import random

    rng = random.Random(seed)
    universe = AnnotationUniverse()
    terms = []
    for index in range(8):
        universe.register(
            Annotation(f"u{index}", "user", {"g": rng.choice("pqr")})
        )
        terms.append(
            Term((f"u{index}",), float(rng.randint(1, 5)), group=rng.choice("mn"))
        )
    expression = TensorSum(terms, MAX)
    valuations = CancelSingleAttribute(universe, attributes=("g",))
    summary, step = minimal_zero_distance_summary(expression, valuations)
    mapping = MappingState(sorted(expression.annotation_names())).compose(step)
    computer = DistanceComputer(
        expression, valuations, EuclideanDistance(MAX), DomainCombiners(), universe
    )
    assert computer.exact(summary, mapping).value == pytest.approx(0.0)
