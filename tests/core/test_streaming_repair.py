"""Streaming ingest + summary repair: the streamed ≡ frozen invariant.

The contract under test (see ``src/repro/core/streaming.py``): a
session that ingests provenance deltas and *repairs* its summary must
produce output bit-identical to a from-scratch summarization of the
final polynomial -- same merges, same step records, same distances.

The differential recipe mirrors a real streaming session against a
batch one.  The streamed session summarizes, ingests every delta, and
summarizes again (consuming the repair state).  The reference session
is built fresh over the same instance, ingests the same deltas *before
its first run*, and summarizes with ``repair="off"``; its summary-name
counter is aligned to the streamed session's so the generated summary
annotations (``S1``, ``S2``, ...) coincide.  Everything observable is
then compared exactly -- no tolerances anywhere.

The grid covers datasets × delta schedules × VAL-FUNCs × engine knobs
(carry/lazy on/off, parallelism off, aggregations) plus the legacy
(non-IR) representation; the adversarial schedule spam-flags users so
two previously-distinct equivalence classes merge mid-stream.  Beam
search runs outside the repair path, so its leg asserts the other half
of the invariant: an expression grown by ``apply_delta`` summarizes
(greedy and beam) identically to the same polynomial built frozen.
"""

from dataclasses import replace

import pytest

from repro.core.beam import BeamSummarizer
from repro.core.equivalence import EquivalencePartition, equivalence_classes
from repro.core.problem import SummarizationConfig
from repro.core.streaming import apply_delta, extend_valuations
from repro.core.summarize import Summarizer
from repro.datasets.movielens import (
    MovieLensConfig,
    MovieLensDeltaConfig,
    generate_movielens,
    generate_movielens_deltas,
)
from repro.provenance import ir
from repro.provenance.valuation_classes import CancelSingleAnnotation
from repro.provenance.tensor_sum import TensorSum
from repro.prox.session import ProxSession
from repro.prox.summarization import SummarizationRequest


def _snapshot(result):
    """Everything observable about a run, exactly comparable."""
    return {
        "terms": tuple(result.summary_expression.terms),
        "monoid": result.summary_expression.monoid.name,
        "final_size": result.final_size,
        "final_distance": (
            result.final_distance.value,
            result.final_distance.normalized,
        ),
        "steps": [
            (
                record.merged,
                record.label,
                record.size_after,
                record.distance_after.value,
                record.distance_after.normalized,
            )
            for record in result.steps
        ],
        "stop_reason": result.stop_reason,
    }


def run_differential(cfg, dcfg, request):
    """Streamed-and-repaired vs. fresh-instance from-scratch runs.

    Returns ``(repaired_result, scratch_result)`` -- asserting equality
    is the caller's job so individual cases can add extra claims.
    """
    instance = generate_movielens(cfg)
    deltas = generate_movielens_deltas(instance, dcfg)

    streamed = ProxSession(instance)
    streamed.select_titles(list(streamed.titles()))
    streamed.summarize(request)
    counter_after = instance.universe.summary_counter
    for delta in deltas:
        streamed.ingest(delta)
    repaired = streamed.summarize(request)

    reference_instance = generate_movielens(cfg)
    scratch = ProxSession(reference_instance)
    scratch.select_titles(list(scratch.titles()))
    for delta in deltas:
        scratch.ingest(delta)
    # The streamed session's first summarize consumed summary names;
    # align the counter so both runs generate the same S<n> labels.
    reference_instance.universe.summary_counter = counter_after
    from_scratch = scratch.summarize(
        SummarizationRequest(
            **{**request.__dict__, "repair": "off"}
        )
    )
    return repaired, from_scratch


BASE = dict(n_users=24, n_movies=30, seed=3)
APPEND = dict(n_deltas=3, seed=11)
SPAM = dict(n_deltas=4, spam_flag_every=3, seed=11)

GRID = [
    pytest.param(
        MovieLensConfig(**BASE),
        MovieLensDeltaConfig(**APPEND),
        SummarizationRequest(number_of_steps=6),
        id="append-default",
    ),
    pytest.param(
        MovieLensConfig(**BASE),
        MovieLensDeltaConfig(**SPAM),
        SummarizationRequest(number_of_steps=6),
        id="spam-adversarial",
    ),
    pytest.param(
        MovieLensConfig(include_movie_merges=True, **BASE),
        MovieLensDeltaConfig(**SPAM),
        SummarizationRequest(number_of_steps=6),
        id="movie-merges-spam",
    ),
    pytest.param(
        MovieLensConfig(**BASE),
        MovieLensDeltaConfig(n_deltas=4, new_movie_every=2, seed=7),
        SummarizationRequest(number_of_steps=6),
        id="new-movie-heavy",
    ),
    pytest.param(
        MovieLensConfig(**BASE),
        MovieLensDeltaConfig(**APPEND),
        SummarizationRequest(number_of_steps=6, lazy=True),
        id="lazy-queue",
    ),
    pytest.param(
        MovieLensConfig(**BASE),
        MovieLensDeltaConfig(**APPEND),
        SummarizationRequest(number_of_steps=6, carry="off"),
        id="carry-off",
    ),
    pytest.param(
        MovieLensConfig(**BASE),
        MovieLensDeltaConfig(**SPAM),
        SummarizationRequest(number_of_steps=6, val_func="Absolute Difference"),
        id="absolute-difference",
    ),
    pytest.param(
        MovieLensConfig(**BASE),
        MovieLensDeltaConfig(**APPEND),
        SummarizationRequest(
            number_of_steps=5, aggregation="SUM", val_func="Disagreement"
        ),
        id="sum-disagreement",
    ),
    pytest.param(
        MovieLensConfig(**BASE),
        MovieLensDeltaConfig(**APPEND),
        SummarizationRequest(number_of_steps=6, parallelism="off"),
        id="parallelism-off",
    ),
]


class TestStreamedEqualsFrozen:
    @pytest.mark.parametrize("cfg, dcfg, request_", GRID)
    def test_repaired_is_bit_identical(self, cfg, dcfg, request_):
        repaired, from_scratch = run_differential(cfg, dcfg, request_)
        assert _snapshot(repaired) == _snapshot(from_scratch)

    def test_repair_actually_seeds_measurements(self):
        """Guard against the repair path silently never engaging."""
        repaired, from_scratch = run_differential(
            MovieLensConfig(**BASE),
            MovieLensDeltaConfig(**APPEND),
            SummarizationRequest(number_of_steps=6),
        )
        assert _snapshot(repaired) == _snapshot(from_scratch)
        assert repaired.repair_seeded > 0

    def test_legacy_representation(self):
        """The invariant must hold with the interned IR disabled too."""
        with ir.mode(ir.MODE_LEGACY):
            repaired, from_scratch = run_differential(
                MovieLensConfig(**BASE),
                MovieLensDeltaConfig(**SPAM),
                SummarizationRequest(number_of_steps=6),
            )
        assert _snapshot(repaired) == _snapshot(from_scratch)

    def test_repeated_ingest_between_every_summarize(self):
        """Repair survives a summarize after *every* delta, not just one
        batch of deltas at the end (the schedule a live session runs)."""
        cfg = MovieLensConfig(**BASE)
        dcfg = MovieLensDeltaConfig(n_deltas=4, spam_flag_every=2, seed=5)
        request = SummarizationRequest(number_of_steps=6)

        instance = generate_movielens(cfg)
        deltas = generate_movielens_deltas(instance, dcfg)
        streamed = ProxSession(instance)
        streamed.select_titles(list(streamed.titles()))
        streamed.summarize(request)
        counters = []
        for delta in deltas:
            streamed.ingest(delta)
            result = streamed.summarize(request)
            counters.append(instance.universe.summary_counter)

        reference_instance = generate_movielens(cfg)
        scratch = ProxSession(reference_instance)
        scratch.select_titles(list(scratch.titles()))
        for index, delta in enumerate(deltas):
            scratch.ingest(delta)
        # Align naming with the streamed session's final run: it starts
        # generating names where its previous run stopped.
        reference_instance.universe.summary_counter = (
            counters[-2] if len(counters) > 1 else counters[-1]
        )
        from_scratch = scratch.summarize(
            SummarizationRequest(number_of_steps=6, repair="off")
        )
        assert _snapshot(result) == _snapshot(from_scratch)


class TestAdversarialClassMerge:
    def test_spam_flags_merge_equivalence_classes(self):
        """The adversarial schedule really merges two distinct classes."""
        instance = generate_movielens(MovieLensConfig(**BASE))
        deltas = generate_movielens_deltas(
            instance, MovieLensDeltaConfig(n_deltas=1, spam_flag_every=1, seed=11)
        )
        (delta,) = deltas
        assert delta.extend_valuations, "schedule produced no spam flag"
        flagged = sorted(
            names[0] for names in delta.extend_valuations.values()
        )

        # Spam flags target the per-user cancel valuations -- the class
        # the session summarizes with, not the instance default.
        valuations = CancelSingleAnnotation(instance.universe, domains=("user",))
        names = sorted(
            a.name for a in instance.universe if a.domain == "user"
        )
        before = equivalence_classes(names, valuations)
        extended = extend_valuations(valuations, delta)
        after = equivalence_classes(names, extended)

        def class_of(classes, name):
            return next(group for group in classes if name in group)

        first, second = flagged
        assert class_of(before, first) != class_of(before, second)
        assert class_of(after, first) == class_of(after, second)
        # And the incremental repair sees exactly the same merge.
        partition = EquivalencePartition.build(names, valuations)
        repaired = partition.repair(names, extended, delta.flipped())
        assert repaired.classes(names) == after


class TestStreamedExpressionConstruction:
    """``apply_delta`` growth ≡ frozen construction, under greedy & beam."""

    DELTA_CFG = dict(n_deltas=3, new_movie_every=2, seed=9)

    def _grown_and_frozen(self):
        """(instance, grown expression, frozen expression) -- instance
        freshly generated per call so summary names never collide."""
        instance = generate_movielens(MovieLensConfig(**BASE))
        deltas = generate_movielens_deltas(
            instance, MovieLensDeltaConfig(**self.DELTA_CFG)
        )
        session = ProxSession(instance)
        session.select_titles(list(session.titles()))
        base_terms = list(session.selected.terms)
        grown = session.selected
        for delta in deltas:
            session.ingest(delta)
            grown = session.selected
        all_terms = list(base_terms)
        for delta in deltas:
            all_terms.extend(delta.terms)
        frozen = TensorSum(tuple(all_terms), grown.monoid)
        return instance, grown, frozen

    def test_grown_expression_equals_frozen(self):
        _, grown, frozen = self._grown_and_frozen()
        assert tuple(grown.terms) == tuple(frozen.terms)

    def _run(self, which, summarizer_cls, **kwargs):
        instance, grown, frozen = self._grown_and_frozen()
        expression = grown if which == "grown" else frozen
        problem = replace(instance.problem(), expression=expression)
        config = SummarizationConfig(w_dist=0.7, max_steps=4, seed=0)
        return summarizer_cls(problem, config, **kwargs).run()

    def test_greedy_agrees_on_grown_expression(self):
        greedy_grown = self._run("grown", Summarizer)
        greedy_frozen = self._run("frozen", Summarizer)
        assert _snapshot(greedy_grown) == _snapshot(greedy_frozen)

    def test_beam_agrees_on_grown_expression(self):
        beam_grown = self._run("grown", BeamSummarizer, beam_width=2)
        beam_frozen = self._run("frozen", BeamSummarizer, beam_width=2)
        assert _snapshot(beam_grown) == _snapshot(beam_frozen)
