"""The batch step scorer must replicate the reference path exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    MAXC,
    MappingState,
    enumerate_candidates,
    virtual_summary,
)
from repro.core.fast_distance import FastStepScorer
from repro.core.summarize import _OverlayUniverse
from repro.core.val_funcs import DDPCostDifference
from repro.datasets import (
    MovieLensConfig,
    WikipediaConfig,
    generate_movielens,
    generate_wikipedia,
)
from repro.provenance import MAX, MIN, Guard, TensorSum, Term


def reference_score(problem, computer, mapping, candidate):
    parts = [problem.universe[name] for name in candidate.parts]
    virtual = virtual_summary(parts, candidate.proposal)
    overlay = _OverlayUniverse(problem.universe, {virtual.name: virtual})
    step = {name: virtual.name for name in candidate.parts}
    expression = problem.expression.apply_mapping(step)
    distance = computer.distance(
        expression, mapping.compose(step), universe=overlay
    )
    return expression.size(), distance


def assert_scorer_matches(instance):
    problem = instance.problem()
    computer = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
    )
    mapping = MappingState(sorted(problem.expression.annotation_names()))
    assert FastStepScorer.applicable(
        problem.expression,
        problem.val_func,
        problem.combiners,
        problem.valuations,
        problem.universe,
        max_enumerate=512,
    )
    scorer = FastStepScorer(computer, problem.expression, mapping, problem.universe)
    candidates = enumerate_candidates(
        problem.expression, problem.universe, problem.constraint
    )
    assert candidates, "setting must produce candidates"
    for candidate in candidates:
        fast_size, fast_distance = scorer.score(candidate.parts)
        ref_size, ref_distance = reference_score(problem, computer, mapping, candidate)
        assert fast_size == ref_size, candidate
        assert fast_distance.value == pytest.approx(
            ref_distance.value, abs=1e-12
        ), candidate
        assert fast_distance.normalized == pytest.approx(
            ref_distance.normalized, abs=1e-12
        )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_matches_reference_on_movielens_attribute_class(seed):
    assert_scorer_matches(
        generate_movielens(MovieLensConfig(n_users=8, n_movies=5, seed=seed))
    )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_matches_reference_on_movielens_annotation_class(seed):
    assert_scorer_matches(
        generate_movielens(
            MovieLensConfig(
                n_users=8, n_movies=5, valuation_class="annotation", seed=seed
            )
        )
    )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_matches_reference_on_wikipedia_with_group_merges(seed):
    """Wikipedia merges *page* annotations -- the group-merge path."""
    assert_scorer_matches(
        generate_wikipedia(WikipediaConfig(n_users=6, n_pages=8, seed=seed))
    )


class TestGuardMasks:
    def test_four_guard_regimes(self, thesis_universe):
        terms = [
            # alive-sat & dead-sat: never blocks.
            Term(("U1",), 1.0, group="g", guards=(Guard(("U2",), 5, ">=", 0),)),
            # alive-sat only: blocks when U2 false.
            Term(("U1",), 2.0, group="h", guards=(Guard(("U2",), 5, ">", 2),)),
            # dead-sat only: blocks when U2 true.
            Term(("U1",), 3.0, group="i", guards=(Guard(("U2",), 1, "==", 0),)),
            # never satisfied: always blocked.
            Term(("U1",), 4.0, group="j", guards=(Guard(("U2",), 1, ">", 2),)),
        ]
        expression = TensorSum(terms, MAX)
        from repro.core import EuclideanDistance
        from repro.provenance import CancelSingleAnnotation

        valuations = CancelSingleAnnotation(thesis_universe, domains=("user",))

        computer = DistanceComputer(
            expression,
            valuations,
            EuclideanDistance(MAX),
            DomainCombiners(),
            thesis_universe,
        )
        mapping = MappingState(["U1", "U2", "U3"])
        scorer = FastStepScorer(computer, expression, mapping, thesis_universe)
        # Cross-check the baseline vectors against direct evaluation.
        for index, valuation in enumerate(scorer.valuations):
            direct = expression.evaluate(valuation.false_set())
            for group, values in scorer._baseline.items():
                expected = direct.get(group)
                expected_value = expected.finalized_value() if expected else 0.0
                assert values[index] == pytest.approx(expected_value)


class TestApplicability:
    def test_rejects_min_monoid(self, thesis_universe, match_point):
        from repro.core import EuclideanDistance
        from repro.provenance import CancelSingleAnnotation

        expression = TensorSum(list(match_point.terms), MIN)
        assert not FastStepScorer.applicable(
            expression,
            EuclideanDistance(MIN),
            DomainCombiners(),
            CancelSingleAnnotation(thesis_universe, domains=("user",)),
            thesis_universe,
            512,
        )

    def test_rejects_non_or_combiners(self, thesis_universe, match_point):
        from repro.core import EuclideanDistance
        from repro.provenance import CancelSingleAnnotation

        assert not FastStepScorer.applicable(
            match_point,
            EuclideanDistance(MAX),
            DomainCombiners(per_domain={"user": MAXC}),
            CancelSingleAnnotation(thesis_universe, domains=("user",)),
            thesis_universe,
            512,
        )

    def test_rejects_ddp_val_func_and_large_classes(
        self, thesis_universe, match_point
    ):
        from repro.provenance import CancelSingleAnnotation

        valuations = CancelSingleAnnotation(thesis_universe, domains=("user",))
        assert not FastStepScorer.applicable(
            match_point,
            DDPCostDifference(),
            DomainCombiners(),
            valuations,
            thesis_universe,
            512,
        )
        from repro.core import EuclideanDistance

        assert not FastStepScorer.applicable(
            match_point,
            EuclideanDistance(MAX),
            DomainCombiners(),
            valuations,
            thesis_universe,
            max_enumerate=1,
        )
