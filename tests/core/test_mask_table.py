"""Property proof: packed ``MaskTable`` construction ≡ the seed bigint masks.

The seed scorers built per-annotation false masks as unbounded python
ints (``mask |= 1 << index`` per falsifying valuation).  The packed
representation scatters the same false sets into ``array('Q')`` word
rows via the kernel's :meth:`scatter_false_sets` instead.  This suite
replays the *old* bigint loop inline against live scorers and asserts
the word rows encode exactly the same bit sets, across

* ragged tails (``n_vals`` far from a multiple of 64),
* duplicated sampled draws (sampling with replacement repeats batch
  members, whose positions scatter as one multi-position entry),
* guard masks and candidate merge overrides layered on the table, and
* the interner on/off key spaces (IR vs legacy name keys).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DistanceComputer, MappingState, SampledStepScorer, kernels
from repro.core import enumerate_candidates
from repro.core.fast_distance import _COMPARE, FastStepScorer
from repro.provenance.ir import AnnotationInterner

from .test_sampled_scoring import (
    MONOIDS,
    apply_first,
    random_problem,
    sampling_computer,
)

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


# -- the seed construction, replayed ------------------------------------------------


def bigint_masks(scorer):
    """The pre-packing construction: ``mask[key] |= 1 << index``.

    A faithful inline replay of the seed ``_build_masks`` loop over the
    scorer's own valuation sequence and key space.
    """
    key = scorer._key
    interner = scorer._interner
    combiners = scorer.computer.combiners
    masks = {}
    for name in scorer.current.annotation_names():
        masks.setdefault(key(name), 0)
    for index, valuation in enumerate(scorer.valuations):
        bit = 1 << index
        for name in combiners.lifted_false_set(
            valuation, scorer.mapping, scorer.universe
        ):
            mask_key = interner.lookup(name) if interner is not None else name
            if mask_key in masks:
                masks[mask_key] |= bit
    return masks


def bigint_guard_mask(scorer, guard_token, guard_keys, masks, overrides=None):
    """The seed ``_guard_mask`` on bigints."""
    compare = _COMPARE[guard_token.op]
    sat_alive = compare(guard_token.value, guard_token.threshold)
    sat_dead = compare(0.0, guard_token.threshold)
    if sat_alive and sat_dead:
        return 0
    full = (1 << scorer.n_vals) - 1
    if not sat_alive and not sat_dead:
        return full
    union = 0
    for mask_key in guard_keys:
        mask = overrides.get(mask_key) if overrides is not None else None
        if mask is None:
            mask = masks.get(mask_key)
        if mask is not None:
            union |= mask
    return union if sat_alive else full & ~union


def bigint_term_dead(scorer, index, masks, overrides=None):
    """The seed ``_term_mask`` on bigints (annotations OR guards)."""
    dead = 0
    for mask_key in scorer._term_ann_keys[index]:
        mask = overrides.get(mask_key) if overrides is not None else None
        dead |= masks[mask_key] if mask is None else mask
    for guard_token, guard_keys in scorer._term_guard_keys[index]:
        dead |= bigint_guard_mask(scorer, guard_token, guard_keys, masks, overrides)
    return dead


def assert_rows_match_bigints(scorer):
    """Every packed row encodes the seed bigint bit set, tail-clamped."""
    expected = bigint_masks(scorer)
    assert set(scorer._mask) == set(expected)
    for mask_key, row in scorer._mask.items():
        value = kernels.row_int(row)
        assert value == expected[mask_key], mask_key
        # Tail-clamp invariant: no bits at or above n_vals.
        assert value < (1 << max(scorer.n_vals, 1))
    return expected


def interned(problem, on):
    return AnnotationInterner() if on else None


# -- enumerated scorer: ragged tails x interner x guards ---------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    monoid_name=st.sampled_from(sorted(MONOIDS)),
    n_users=st.integers(2, 7),
    with_guards=st.booleans(),
    use_interner=st.booleans(),
)
def test_enumerated_masks_match_bigint_construction(
    seed, monoid_name, n_users, with_guards, use_interner
):
    problem = random_problem(
        seed, MONOIDS[monoid_name], n_users=n_users, with_guards=with_guards
    )
    computer = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
        interner=interned(problem, use_interner),
    )
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    scorer = FastStepScorer(computer, current, mapping, problem.universe)
    masks = assert_rows_match_bigints(scorer)
    # Term dead rows fold the same bigints (guards included).
    for index in range(len(scorer._terms)):
        assert kernels.row_int(scorer._term_dead[index]) == bigint_term_dead(
            scorer, index, masks
        )


# -- sampled scorer: duplicated draws and ragged batch sizes -----------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    monoid_name=st.sampled_from(sorted(MONOIDS)),
    # Batches well above the valuation-class size force duplicated
    # draws; awkward sizes (65, 127, 129...) exercise ragged tails.
    batch=st.integers(1, 200),
    use_interner=st.booleans(),
)
def test_sampled_masks_match_bigint_construction(seed, monoid_name, batch, use_interner):
    problem = random_problem(seed, MONOIDS[monoid_name], n_users=4)
    computer = sampling_computer(
        problem, seed, batch=batch, interner=interned(problem, use_interner)
    )
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    # Explicit batches are clamped at 16 x |V_Ann| by the computer.
    class_size = len(list(problem.valuations))
    assert scorer.n_vals == max(1, min(batch, 16 * class_size))
    # Sampling with replacement from a small class: assert the batch
    # really contains duplicated members when it plausibly must.
    if scorer.n_vals > class_size:
        assert len({id(v) for v in scorer.valuations}) < scorer.n_vals
    masks = assert_rows_match_bigints(scorer)
    for index in range(len(scorer._terms)):
        assert kernels.row_int(scorer._term_dead[index]) == bigint_term_dead(
            scorer, index, masks
        )


# -- candidate overrides: merged rows ≡ bigint AND ---------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    with_guards=st.booleans(),
    use_interner=st.booleans(),
)
def test_candidate_override_rows_match_bigint_and(seed, with_guards, use_interner):
    problem = random_problem(seed, MONOIDS["SUM"], with_guards=with_guards)
    computer = sampling_computer(
        problem, seed, batch=130, interner=interned(problem, use_interner)
    )
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    masks = bigint_masks(scorer)
    candidates = enumerate_candidates(current, problem.universe, problem.constraint)
    rng = random.Random(seed)
    for candidate in rng.sample(candidates, min(5, len(candidates))):
        part_set, affected, override, group_merge = scorer._candidate_state(
            candidate.parts
        )
        part_keys = [scorer._key(name) for name in candidate.parts]
        # The merge's row is the AND of the part rows (OR combiner over
        # 0/1 valuations); replay it on the bigints.
        merged = masks[part_keys[0]]
        for part_key in part_keys[1:]:
            merged &= masks[part_key]
        big_overrides = {part_key: merged for part_key in part_keys}
        big_overrides[scorer._ann_marker] = merged
        for index in affected:
            assert kernels.row_int(override[index]) == bigint_term_dead(
                scorer, index, masks, big_overrides
            )


# -- carried masks survive advance() under the new representation ------------------


def test_masks_rebuild_bit_identical_after_advance():
    problem = random_problem(3, MONOIDS["SUM"])
    computer = sampling_computer(problem, 3, batch=96)
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    candidates = enumerate_candidates(current, problem.universe, problem.constraint)
    chosen, summary, current, mapping = apply_first(
        problem, current, mapping, candidates
    )
    scorer.advance(chosen.parts, summary.name, current, mapping)
    assert_rows_match_bigints(scorer)
