"""Algorithm 1: stop conditions, monotonicity, worked examples."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SummarizationConfig, Summarizer, summarize
from repro.datasets import MovieLensConfig, generate_movielens


class TestExample423:
    """The full algorithm flow of Example 4.2.3: with wDist = 1 the
    algorithm prefers mapping U1, U3 → Audience (distance 0) over
    U1, U2 → Female (distance > 0)."""

    def test_first_merge_is_audience(self, thesis_problem):
        config = SummarizationConfig(
            w_dist=1.0, max_steps=1, group_equivalent_first=False, seed=0
        )
        result = Summarizer(thesis_problem, config).run()
        assert result.n_steps == 1
        assert set(result.steps[0].merged) == {"U1", "U3"}
        assert result.steps[0].label == "role=audience"
        assert result.final_distance.value == 0.0

    def test_summary_groups(self, thesis_problem):
        config = SummarizationConfig(
            w_dist=1.0, max_steps=1, group_equivalent_first=False, seed=0
        )
        result = Summarizer(thesis_problem, config).run()
        groups = result.summary_groups()
        assert list(groups.values()) == [("U1", "U3")]


class TestStopConditions:
    def test_target_size(self, thesis_problem):
        config = SummarizationConfig(w_dist=1.0, target_size=3, max_steps=10)
        result = Summarizer(thesis_problem, config).run()
        assert result.stop_reason == "target_size"
        assert result.final_size <= 3

    def test_max_steps(self, thesis_problem):
        config = SummarizationConfig(
            w_dist=1.0, max_steps=1, group_equivalent_first=False
        )
        result = Summarizer(thesis_problem, config).run()
        assert result.stop_reason == "max_steps"
        assert result.n_steps == 1

    def test_target_dist_reverts_to_previous(self, thesis_problem):
        # A tiny positive bound: the first distance-increasing merge
        # overshoots, so the result must stay within the bound.
        config = SummarizationConfig(
            w_dist=0.0, target_dist=0.01, max_steps=10, seed=0
        )
        result = Summarizer(thesis_problem, config).run()
        assert result.stop_reason in ("target_dist", "exhausted")
        assert result.final_distance.normalized < 0.01

    def test_exhausted_when_no_candidates(self, thesis_problem):
        config = SummarizationConfig(w_dist=0.5, max_steps=50)
        result = Summarizer(thesis_problem, config).run()
        assert result.stop_reason in ("exhausted", "target_size")

    def test_zero_steps(self, thesis_problem):
        config = SummarizationConfig(max_steps=0, group_equivalent_first=False)
        result = Summarizer(thesis_problem, config).run()
        assert result.n_steps == 0
        assert result.summary_expression is result.original_expression


class TestTrajectories:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=300),
        w_dist=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
    )
    def test_size_never_increases_and_distance_never_decreases(self, seed, w_dist):
        """Proposition 4.2.2 along the algorithm's own merge chain."""
        instance = generate_movielens(
            MovieLensConfig(n_users=10, n_movies=5, seed=seed)
        )
        result = summarize(
            instance.problem(),
            SummarizationConfig(w_dist=w_dist, max_steps=6, seed=seed),
        )
        sizes = result.size_trajectory()
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))
        distances = [
            record.distance_after.normalized
            for record in result.steps
            if record.distance_after is not None
        ]
        assert all(b >= a - 1e-9 for a, b in zip(distances, distances[1:]))

    def test_mapping_covers_all_base_annotations(self, thesis_problem):
        result = summarize(thesis_problem, SummarizationConfig(max_steps=3))
        base = set(result.original_expression.annotation_names())
        assert set(result.mapping) == base
        current = set(result.summary_expression.annotation_names())
        assert {result.mapping[name] for name in base} == current


class TestInstrumentation:
    def test_step_records(self, thesis_problem):
        result = summarize(
            thesis_problem,
            SummarizationConfig(
                w_dist=1.0, max_steps=2, group_equivalent_first=False
            ),
        )
        for index, record in enumerate(result.steps, start=1):
            assert record.step == index
            assert record.n_candidates >= 1
            assert record.candidate_seconds >= 0.0
            assert record.step_seconds >= record.candidate_seconds
        assert result.total_seconds > 0


class TestKWayMerges:
    def test_arity_three_merges_three_at_once(self):
        instance = generate_movielens(
            MovieLensConfig(n_users=12, n_movies=5, seed=4)
        )
        result = summarize(
            instance.problem(),
            SummarizationConfig(
                w_dist=0.0, max_steps=3, merge_arity=3, seed=0,
                group_equivalent_first=False,
            ),
        )
        assert result.n_steps >= 1
        assert any(len(record.merged) == 3 for record in result.steps)

    def test_fewer_steps_needed_than_pairwise(self):
        """The future-work tradeoff: higher arity reaches a size target
        in fewer steps."""
        def run(arity):
            instance = generate_movielens(
                MovieLensConfig(n_users=12, n_movies=5, seed=4)
            )
            original = instance.expression.size()
            return summarize(
                instance.problem(),
                SummarizationConfig(
                    w_dist=0.0,
                    target_size=int(original * 0.7),
                    max_steps=100,
                    merge_arity=arity,
                    seed=0,
                ),
            )

        pairwise = run(2)
        three_way = run(3)
        assert pairwise.stop_reason == three_way.stop_reason == "target_size"
        assert three_way.n_steps <= pairwise.n_steps
