"""Proposition 4.2.2 on *arbitrary* merge chains (not just the
algorithm's greedy choices): along any sequence of homomorphisms the
distance never decreases and the size never increases."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Disagreement,
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    AbsoluteDifference,
    MappingState,
)
from repro.provenance import (
    MAX,
    SUM,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    TensorSum,
    Term,
)

VAL_FUNCS = {
    "euclidean": EuclideanDistance,
    "absolute": AbsoluteDifference,
    "disagreement": Disagreement,
}


def random_instance(rng: random.Random, monoid):
    universe = AnnotationUniverse()
    n_users = rng.randint(4, 8)
    for index in range(n_users):
        universe.register(Annotation(f"u{index}", "user", {"g": "x"}))
    terms = []
    for index in range(n_users):
        for _ in range(rng.randint(1, 2)):
            terms.append(
                Term(
                    (f"u{index}",),
                    float(rng.randint(0, 5)),
                    group=rng.choice(("m1", "m2", "m3")),
                )
            )
    return universe, TensorSum(terms, monoid)


def random_merge_chain(rng: random.Random, universe, expression, length=4):
    """A random sequence of constraint-free pair merges."""
    mapping = MappingState(sorted(expression.annotation_names()))
    chain = [(expression, mapping)]
    current = expression
    for _ in range(length):
        names = sorted(current.annotation_names())
        if len(names) < 2:
            break
        first, second = rng.sample(names, 2)
        summary = universe.new_summary(
            [universe[first], universe[second]], label="m"
        )
        step = {first: summary.name, second: summary.name}
        current = current.apply_mapping(step)
        mapping = mapping.compose(step)
        chain.append((current, mapping))
    return chain


@pytest.mark.parametrize("val_func_name", sorted(VAL_FUNCS))
@pytest.mark.parametrize("monoid", [MAX, SUM], ids=["MAX", "SUM"])
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_distance_monotone_and_size_antitone(val_func_name, monoid, seed):
    rng = random.Random(seed)
    universe, expression = random_instance(rng, monoid)
    valuations = CancelSingleAnnotation(universe, domains=("user",))
    computer = DistanceComputer(
        expression,
        valuations,
        VAL_FUNCS[val_func_name](monoid),
        DomainCombiners(),
        universe,
    )
    chain = random_merge_chain(rng, universe, expression)
    distances = [
        computer.exact(summary, mapping).value for summary, mapping in chain
    ]
    sizes = [summary.size() for summary, _ in chain]
    assert all(
        later >= earlier - 1e-9 for earlier, later in zip(distances, distances[1:])
    ), distances
    assert all(
        later <= earlier for earlier, later in zip(sizes, sizes[1:])
    ), sizes
