"""Distance computation: exact, sampled, exhaustive (Ch. 4.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    MappingState,
    chebyshev_sample_size,
    exhaustive_distance,
)
from repro.provenance import (
    MAX,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    ExplicitValuations,
    TensorSum,
    Term,
    cancel,
)


def make_computer(universe, expression, valuations=None, **kwargs):
    return DistanceComputer(
        expression,
        valuations
        if valuations is not None
        else CancelSingleAnnotation(universe, domains=("user",)),
        EuclideanDistance(MAX),
        DomainCombiners(),
        universe,
        **kwargs,
    )


def test_chebyshev_sample_size():
    # 1 / (4 · 0.1 · 0.1²) = 250 (float rounding may ceil to 251).
    assert chebyshev_sample_size(0.1, 0.9) in (250, 251)
    assert chebyshev_sample_size(0.05, 0.9) in (1000, 1001)
    # Tighter epsilon or confidence needs more samples.
    assert chebyshev_sample_size(0.01, 0.9) > chebyshev_sample_size(0.1, 0.9)
    assert chebyshev_sample_size(0.1, 0.99) > chebyshev_sample_size(0.1, 0.9)
    with pytest.raises(ValueError):
        chebyshev_sample_size(0.0, 0.9)
    with pytest.raises(ValueError):
        chebyshev_sample_size(0.1, 1.0)


class TestExample323:
    """Example 3.2.3: P''_s is at distance 0 from P_s, P'_s is not."""

    def test_audience_summary_distance_zero(
        self, thesis_universe, match_point
    ):
        audience = thesis_universe.new_summary(
            [thesis_universe["U1"], thesis_universe["U3"]], label="Audience"
        )
        step = {"U1": audience.name, "U3": audience.name}
        mapping = MappingState(["U1", "U2", "U3"]).compose(step)
        computer = make_computer(thesis_universe, match_point)
        estimate = computer.distance(match_point.apply_mapping(step), mapping)
        assert estimate.exact
        assert estimate.value == 0.0

    def test_female_summary_distance_positive(
        self, thesis_universe, match_point
    ):
        female = thesis_universe.new_summary(
            [thesis_universe["U1"], thesis_universe["U2"]], label="Female"
        )
        step = {"U1": female.name, "U2": female.name}
        mapping = MappingState(["U1", "U2", "U3"]).compose(step)
        computer = make_computer(thesis_universe, match_point)
        estimate = computer.distance(match_point.apply_mapping(step), mapping)
        # Cancelling U2 keeps Female alive (U1 lives): summary says 5,
        # original says 3 -> error 2 on one of three valuations.
        assert estimate.value == pytest.approx(2.0 / 3.0)
        assert estimate.normalized == pytest.approx((2.0 / 3.0) / 5.0)


class TestSampling:
    def test_sampled_close_to_exact(self, thesis_universe, match_point):
        female = thesis_universe.new_summary(
            [thesis_universe["U1"], thesis_universe["U2"]], label="Female"
        )
        step = {"U1": female.name, "U2": female.name}
        mapping = MappingState(["U1", "U2", "U3"]).compose(step)
        summary = match_point.apply_mapping(step)
        computer = make_computer(
            thesis_universe, match_point, rng=random.Random(7)
        )
        exact = computer.exact(summary, mapping)
        sampled = computer.sampled(summary, mapping)
        assert not sampled.exact
        assert abs(sampled.value - exact.value) < 0.35  # epsilon-ish

    def test_small_classes_enumerate(self, thesis_universe, match_point):
        computer = make_computer(thesis_universe, match_point, max_enumerate=512)
        mapping = MappingState(["U1", "U2", "U3"])
        assert computer.distance(match_point, mapping).exact

    def test_large_classes_sample(self, thesis_universe, match_point):
        computer = make_computer(
            thesis_universe, match_point, max_enumerate=1, n_samples=5
        )
        mapping = MappingState(["U1", "U2", "U3"])
        estimate = computer.distance(match_point, mapping)
        assert not estimate.exact
        assert estimate.n_valuations == 5

    def test_identity_mapping_distance_zero_even_sampled(
        self, thesis_universe, match_point
    ):
        computer = make_computer(
            thesis_universe, match_point, max_enumerate=1, n_samples=20
        )
        mapping = MappingState(["U1", "U2", "U3"])
        assert computer.distance(match_point, mapping).value == 0.0


class TestWeights:
    def test_weighted_average(self, thesis_universe, match_point):
        female = thesis_universe.new_summary(
            [thesis_universe["U1"], thesis_universe["U2"]], label="Female"
        )
        step = {"U1": female.name, "U2": female.name}
        mapping = MappingState(["U1", "U2", "U3"]).compose(step)
        summary = match_point.apply_mapping(step)
        # Put all the weight on the disagreeing valuation (cancel U2).
        valuations = ExplicitValuations(
            [
                cancel(["U1"], weight=0.0),
                cancel(["U2"], weight=1.0),
                cancel(["U3"], weight=0.0),
            ]
        )
        computer = make_computer(thesis_universe, match_point, valuations)
        assert computer.distance(summary, mapping).value == pytest.approx(2.0)


class TestExhaustive:
    def test_matches_handcount(self, thesis_universe, match_point):
        """DIST-COMP over all 2^3 valuations for the Female summary."""
        female = thesis_universe.new_summary(
            [thesis_universe["U1"], thesis_universe["U2"]], label="Female"
        )
        step = {"U1": female.name, "U2": female.name}
        mapping = MappingState(["U1", "U2", "U3"]).compose(step)
        summary = match_point.apply_mapping(step)
        value = exhaustive_distance(
            match_point,
            summary,
            mapping,
            EuclideanDistance(MAX),
            DomainCombiners(),
            thesis_universe,
        )
        # Disagreements: valuations where exactly one of U1/U2 is true
        # and the live one is U1 (summary reports 5, original 3):
        # {U1,U3}, {U1} -> error 2 each; {U1, U3} has U3's 3 so still 5
        # vs 3 = 2.  8 valuations total, error sum 4, normalized by 5.
        assert value == pytest.approx((4.0 / 8.0) / 5.0)

    def test_size_guard(self, thesis_universe):
        big = TensorSum(
            [Term((f"u{i}",), 1.0, group="g") for i in range(20)], MAX
        )
        with pytest.raises(ValueError, match="exhaustive enumeration"):
            exhaustive_distance(
                big,
                big,
                MappingState([f"u{i}" for i in range(20)]),
                EuclideanDistance(MAX),
                DomainCombiners(),
                thesis_universe,
            )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_sampling_concentrates(seed):
    """Proposition 4.1.2: the sampling estimate approaches the exact
    distance (here: within 0.3 of it with 200 samples on a 4-valuation
    class -- far inside the Chebyshev bound)."""
    universe = AnnotationUniverse()
    for index in range(4):
        universe.register(Annotation(f"u{index}", "user", {"g": index % 2}))
    expression = TensorSum(
        [Term((f"u{i}",), float(i + 1), group="g") for i in range(4)], MAX
    )
    summary_annotation = universe.new_summary(
        [universe["u0"], universe["u2"]], label="even"
    )
    step = {"u0": summary_annotation.name, "u2": summary_annotation.name}
    mapping = MappingState([f"u{i}" for i in range(4)]).compose(step)
    summary = expression.apply_mapping(step)
    valuations = CancelSingleAnnotation(universe, domains=("user",))
    exact_computer = DistanceComputer(
        expression, valuations, EuclideanDistance(MAX), DomainCombiners(), universe
    )
    exact = exact_computer.exact(summary, mapping).normalized
    sampled_computer = DistanceComputer(
        expression,
        valuations,
        EuclideanDistance(MAX),
        DomainCombiners(),
        universe,
        max_enumerate=0,
        n_samples=200,
        rng=random.Random(seed),
    )
    sampled = sampled_computer.distance(summary, mapping).normalized
    assert abs(sampled - exact) < 0.3


class TestSampleVariance:
    """``last_sample_variance`` must be the weight-normalized second
    moment of the draws -- the spread of the actual estimator
    ``SuccCounter / SampleCounter`` (both weighted), not the unweighted
    sample variance."""

    #: VAL-FUNC value of each valuation for the Female summary: only
    #: cancelling U2 disagrees (value 2.0, see Example 3.2.3 tests).
    _VALUES = {"U1": 0.0, "U2": 2.0, "U3": 0.0}

    def _sampled_run(self, thesis_universe, match_point, weights, seed=13):
        female = thesis_universe.new_summary(
            [thesis_universe["U1"], thesis_universe["U2"]], label="Female"
        )
        step = {"U1": female.name, "U2": female.name}
        mapping = MappingState(["U1", "U2", "U3"]).compose(step)
        summary = match_point.apply_mapping(step)
        valuations = ExplicitValuations(
            [cancel([name], weight=weights[name]) for name in ("U1", "U2", "U3")]
        )
        computer = make_computer(
            thesis_universe,
            match_point,
            valuations,
            max_enumerate=0,
            n_samples=40,
            rng=random.Random(seed),
        )
        estimate = computer.sampled(summary, mapping)
        # Replay the identical draw sequence (ExplicitValuations.sample
        # is rng.choice and evaluation never touches the RNG).
        replay = random.Random(seed)
        pool = list(valuations)
        draws = [replay.choice(pool) for _ in range(computer.stats.last_sample_size)]
        weight_sum = sum(draw.weight for draw in draws)
        values = [self._VALUES[next(iter(draw.assignment))] for draw in draws]
        mean = (
            sum(draw.weight * value for draw, value in zip(draws, values))
            / weight_sum
        )
        second = (
            sum(draw.weight * value * value for draw, value in zip(draws, values))
            / weight_sum
        )
        return computer, estimate, mean, max(0.0, second - mean * mean)

    def test_weighted_variance_matches_estimator(
        self, thesis_universe, match_point
    ):
        computer, estimate, mean, expected_variance = self._sampled_run(
            thesis_universe, match_point, {"U1": 0.2, "U2": 5.0, "U3": 1.0}
        )
        assert estimate.value == pytest.approx(mean, rel=1e-12)
        assert computer.stats.last_sample_variance == pytest.approx(
            expected_variance, rel=1e-12
        )

    def test_uniform_weights_reduce_to_unweighted_variance(
        self, thesis_universe, match_point
    ):
        computer, estimate, mean, expected_variance = self._sampled_run(
            thesis_universe, match_point, {"U1": 1.0, "U2": 1.0, "U3": 1.0}
        )
        # With unit weights the weighted estimator *is* the unweighted
        # one -- same mean, same variance, bit for bit.
        assert estimate.value == mean
        assert computer.stats.last_sample_variance == expected_variance
