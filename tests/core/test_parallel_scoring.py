"""Differential proof obligations for the scoring engine.

Four implementations must agree on every candidate of a step: the
naive reference (:class:`DistanceComputer` on each materialized
candidate), the serial :class:`FastStepScorer`, the process-pool
parallel path, and the sparse :class:`IncrementalStepScorer` -- over
randomized instances (explicit RNG grid), SUM/MAX/COUNT aggregations,
the OR combiner, and the degenerate corners (one candidate, one
valuation, all-false annotations, empty groups).

Sizes must match as exact integers; distances to within 1e-12 (the
tolerance the seed's fast-path suite already uses -- dense and sparse
summation differ only in fold order).  Serial and parallel runs of the
*same* scorer must agree bit-for-bit.
"""

import random

import pytest

from repro.core import (
    AbsoluteDifference,
    AllowAll,
    BeamSummarizer,
    Disagreement,
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    MappingState,
    ScoringEngine,
    SummarizationConfig,
    SummarizationProblem,
    Summarizer,
    enumerate_candidates,
    virtual_summary,
)
from repro.provenance import ir as _ir
from repro.core.engine import _OverlayUniverse
from repro.core.fast_distance import FastStepScorer, IncrementalStepScorer
from repro.datasets import MovieLensConfig, generate_movielens
from repro.provenance import (
    COUNT,
    MAX,
    SUM,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    ExplicitValuations,
    Guard,
    TensorSum,
    Term,
    Valuation,
)

from repro.core import kernels

MONOIDS = {"MAX": MAX, "SUM": SUM, "COUNT": COUNT}

KERNEL_AXIS = [
    kernels.MODE_PYTHON,
    pytest.param(
        kernels.MODE_NUMPY,
        marks=pytest.mark.skipif(
            not kernels.numpy_available(), reason="numpy backend unavailable"
        ),
    ),
    pytest.param(
        kernels.MODE_NATIVE,
        marks=pytest.mark.skipif(
            not kernels.native_available(), reason="native backend unavailable"
        ),
    ),
]


needs_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)

needs_native = pytest.mark.skipif(
    not kernels.native_available(), reason="native backend unavailable"
)


@pytest.fixture(params=KERNEL_AXIS)
def kernel(request):
    """Run the test under each kernel backend (python x numpy x native)."""
    with kernels.backend(request.param) as resolved:
        assert resolved == request.param
        yield resolved


# -- instance generation -----------------------------------------------------------


def random_problem(
    seed,
    monoid,
    val_func_cls=EuclideanDistance,
    n_users=6,
    n_terms=14,
    with_guards=False,
    group_merges=False,
    valuations=None,
):
    """A randomized TensorSum summarization problem over one domain.

    With ``group_merges=True`` the group keys are the annotation names
    themselves, so merging a candidate pair also merges groups -- the
    Wikipedia-style path through the scorers.
    """
    rng = random.Random(seed)
    universe = AnnotationUniverse()
    names = [f"U{i}" for i in range(n_users)]
    for name in names:
        universe.register(
            Annotation(name, "user", {"g": rng.choice("AB"), "r": rng.choice("XY")})
        )
    groups = list(names) if group_merges else ["g0", "g1", "g2", None]
    terms = []
    for _ in range(n_terms):
        annotations = tuple(rng.sample(names, rng.choice([1, 1, 2])))
        guards = ()
        if with_guards and rng.random() < 0.4:
            guards = (
                Guard(
                    (rng.choice(names),),
                    rng.choice([1, 5]),
                    rng.choice([">", ">=", "=="]),
                    rng.choice([0, 2]),
                ),
            )
        terms.append(
            Term(
                annotations,
                float(rng.randint(0, 5)),
                group=rng.choice(groups),
                guards=guards,
            )
        )
    expression = TensorSum(terms, monoid)
    if valuations is None:
        valuations = CancelSingleAnnotation(universe, domains=("user",))
    return SummarizationProblem(
        expression=expression,
        universe=universe,
        valuations=valuations,
        val_func=val_func_cls(monoid),
        combiners=DomainCombiners(),
        constraint=AllowAll(),
        description=f"random seed={seed}",
    )


# -- the four scoring paths --------------------------------------------------------


def make_computer(problem):
    return DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
    )


def naive_scores(problem, computer, current, mapping, candidates):
    out = []
    for candidate in candidates:
        parts = [problem.universe[name] for name in candidate.parts]
        virtual = virtual_summary(parts, candidate.proposal)
        overlay = _OverlayUniverse(problem.universe, {virtual.name: virtual})
        step = {name: virtual.name for name in candidate.parts}
        expression = current.apply_mapping(step)
        distance = computer.distance(
            expression, mapping.compose(step), universe=overlay
        )
        out.append((expression.size(), distance))
    return out


def engine_scores(problem, computer, current, mapping, candidates, **knobs):
    engine = ScoringEngine(problem, SummarizationConfig(**knobs), computer)
    measured, _ = engine.measure(candidates, current, mapping)
    return engine, [(scored.size, scored.distance) for scored in measured]


def assert_distances_match(actual, reference, context=""):
    assert len(actual) == len(reference)
    for (size, distance), (ref_size, ref_distance) in zip(actual, reference):
        assert size == ref_size, context
        assert distance.value == pytest.approx(ref_distance.value, abs=1e-12), context
        assert distance.normalized == pytest.approx(
            ref_distance.normalized, abs=1e-12
        ), context


def assert_all_paths_agree(problem):
    """naive ≡ serial fast ≡ parallel fast ≡ incremental, one step."""
    computer = make_computer(problem)
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    candidates = enumerate_candidates(current, problem.universe, problem.constraint)
    assert candidates, "instance must produce candidates"
    assert FastStepScorer.applicable(
        current,
        problem.val_func,
        problem.combiners,
        problem.valuations,
        problem.universe,
        512,
    )
    reference = naive_scores(problem, computer, current, mapping, candidates)

    serial_scorer = FastStepScorer(computer, current, mapping, problem.universe)
    serial = [serial_scorer.score(candidate.parts) for candidate in candidates]
    assert_distances_match(serial, reference, "serial fast vs naive")

    incremental_scorer = IncrementalStepScorer(
        computer, current, mapping, problem.universe
    )
    incremental = [
        incremental_scorer.score(candidate.parts) for candidate in candidates
    ]
    assert_distances_match(incremental, reference, "incremental vs naive")

    engine, parallel = engine_scores(
        problem,
        computer,
        current,
        mapping,
        candidates,
        parallelism=2,
        incremental=False,
        parallel_threshold=1,
    )
    assert engine.last_path == ScoringEngine.PATH_FAST
    assert engine.last_workers == 2 or len(candidates) < 2
    # The parallel path runs the very same scorer in forked workers, so
    # it must be *bit*-identical to the serial run, not just close.
    assert parallel == serial

    engine, parallel_inc = engine_scores(
        problem,
        computer,
        current,
        mapping,
        candidates,
        parallelism=2,
        incremental=True,
        parallel_threshold=1,
    )
    assert engine.last_path == ScoringEngine.PATH_FAST_INCREMENTAL
    assert parallel_inc == incremental


# -- the RNG grid ------------------------------------------------------------------


@pytest.mark.parametrize("monoid_name", sorted(MONOIDS))
@pytest.mark.parametrize("seed", [0, 7, 42])
def test_differential_over_rng_grid(monoid_name, seed, kernel):
    assert_all_paths_agree(random_problem(seed, MONOIDS[monoid_name]))


@pytest.mark.parametrize("monoid_name", sorted(MONOIDS))
def test_differential_with_guards(monoid_name):
    assert_all_paths_agree(
        random_problem(11, MONOIDS[monoid_name], with_guards=True)
    )


@pytest.mark.parametrize("monoid_name", sorted(MONOIDS))
def test_differential_with_group_merges(monoid_name):
    assert_all_paths_agree(
        random_problem(23, MONOIDS[monoid_name], group_merges=True)
    )


@pytest.mark.parametrize("val_func_cls", [AbsoluteDifference, Disagreement])
def test_differential_other_val_funcs(val_func_cls):
    assert_all_paths_agree(random_problem(5, MAX, val_func_cls=val_func_cls))
    assert_all_paths_agree(random_problem(5, SUM, val_func_cls=val_func_cls))


# -- degenerate corners ------------------------------------------------------------


def test_single_candidate():
    assert_all_paths_agree(random_problem(3, SUM, n_users=2, n_terms=5))


def test_single_valuation():
    problem = random_problem(
        9,
        MAX,
        valuations=ExplicitValuations(
            [Valuation({"U0": 0.0}, label="cancel U0")]
        ),
    )
    assert_all_paths_agree(problem)


def test_all_false_annotations():
    """A valuation cancelling every annotation empties both vectors."""
    names = {f"U{i}": 0.0 for i in range(6)}
    problem = random_problem(
        13,
        SUM,
        valuations=ExplicitValuations(
            [
                Valuation(dict(names), label="cancel everything"),
                Valuation({}, label="keep everything"),
            ]
        ),
    )
    assert_all_paths_agree(problem)


def test_empty_groups():
    """Groups whose terms all die under a valuation, plus ungrouped terms."""
    universe = AnnotationUniverse()
    for name in ("U0", "U1", "U2"):
        universe.register(Annotation(name, "user", {"g": "A"}))
    expression = TensorSum(
        [
            Term(("U0",), 2.0, group="g0"),
            Term(("U1",), 3.0, group=None),
            Term(("U0", "U1"), 1.0, group="g1"),
        ],
        SUM,
    )
    problem = SummarizationProblem(
        expression=expression,
        universe=universe,
        valuations=CancelSingleAnnotation(universe, domains=("user",)),
        val_func=EuclideanDistance(SUM),
        combiners=DomainCombiners(),
        constraint=AllowAll(),
    )
    assert_all_paths_agree(problem)


def test_group_only_rename_congruence_size_regression():
    """Terms in different groups whose annotations already coincide
    become congruent when their *groups* merge; the fast size used to
    miss this collision because neither term mentions the merged
    annotations (latent seed bug found by the differential grid)."""
    universe = AnnotationUniverse()
    for name in ("U0", "U1", "U2"):
        universe.register(Annotation(name, "user", {"g": "A"}))
    expression = TensorSum(
        [
            Term(("U2",), 2.0, group="U0"),
            Term(("U2",), 3.0, group="U1"),
            Term(("U0",), 1.0, group=None),
            Term(("U1",), 4.0, group=None),
        ],
        SUM,
    )
    problem = SummarizationProblem(
        expression=expression,
        universe=universe,
        valuations=CancelSingleAnnotation(universe, domains=("user",)),
        val_func=EuclideanDistance(SUM),
        combiners=DomainCombiners(),
        constraint=AllowAll(),
    )
    assert_all_paths_agree(problem)


# -- incremental carry across steps ------------------------------------------------


@pytest.mark.parametrize("monoid_name", sorted(MONOIDS))
def test_incremental_across_steps_matches_fresh(monoid_name):
    """After each applied merge the carried scorer must equal a fresh
    scorer and the naive reference on the *next* step's candidates."""
    problem = random_problem(17, MONOIDS[monoid_name], n_users=6, n_terms=16)
    computer = make_computer(problem)
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    carried = IncrementalStepScorer(computer, current, mapping, problem.universe)

    for step in range(3):
        candidates = enumerate_candidates(
            current, problem.universe, problem.constraint
        )
        if not candidates:
            break
        reference = naive_scores(problem, computer, current, mapping, candidates)
        scores = [carried.score(candidate.parts) for candidate in candidates]
        assert_distances_match(scores, reference, f"step {step}")
        fresh = FastStepScorer(computer, current, mapping, problem.universe)
        fresh_scores = [fresh.score(candidate.parts) for candidate in candidates]
        assert_distances_match(scores, fresh_scores, f"step {step} vs fresh")

        chosen = candidates[step % len(candidates)]
        summary_parts = [problem.universe[name] for name in chosen.parts]
        summary = problem.universe.new_summary(
            summary_parts,
            label=chosen.proposal.label,
            concept=chosen.proposal.concept,
        )
        step_mapping = {name: summary.name for name in chosen.parts}
        current = current.apply_mapping(step_mapping)
        mapping = mapping.compose(step_mapping)
        carried.advance(chosen.parts, summary.name, current, mapping)
        assert carried.steps_carried == step + 1


def test_incremental_group_merges_across_steps():
    problem = random_problem(29, SUM, group_merges=True, n_terms=18)
    computer = make_computer(problem)
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    carried = IncrementalStepScorer(computer, current, mapping, problem.universe)
    for step in range(2):
        candidates = enumerate_candidates(
            current, problem.universe, problem.constraint
        )
        if not candidates:
            break
        reference = naive_scores(problem, computer, current, mapping, candidates)
        scores = [carried.score(candidate.parts) for candidate in candidates]
        assert_distances_match(scores, reference, f"group-merge step {step}")
        chosen = candidates[0]
        summary_parts = [problem.universe[name] for name in chosen.parts]
        summary = problem.universe.new_summary(
            summary_parts, label=chosen.proposal.label
        )
        step_mapping = {name: summary.name for name in chosen.parts}
        current = current.apply_mapping(step_mapping)
        mapping = mapping.compose(step_mapping)
        carried.advance(chosen.parts, summary.name, current, mapping)


# -- end-to-end determinism --------------------------------------------------------


def movielens_problem(seed):
    return generate_movielens(
        MovieLensConfig(n_users=12, n_movies=6, seed=seed)
    ).problem()


@pytest.mark.parametrize("seed", [3, 9])
def test_e2e_determinism_parallel_incremental_vs_seed_default(seed):
    """parallelism=4, incremental=on must replay the seed-default run
    merge for merge on the bundled MovieLens sample."""
    config_kwargs = dict(w_dist=0.7, max_steps=6, seed=0)
    baseline = Summarizer(
        movielens_problem(seed),
        SummarizationConfig(parallelism=0, incremental="off", **config_kwargs),
    ).run()
    tuned = Summarizer(
        movielens_problem(seed),
        SummarizationConfig(
            parallelism=4, incremental="on", parallel_threshold=1, **config_kwargs
        ),
    ).run()
    assert [r.merged for r in tuned.steps] == [r.merged for r in baseline.steps]
    assert [r.new_annotation for r in tuned.steps] == [
        r.new_annotation for r in baseline.steps
    ]
    assert tuned.final_size == baseline.final_size
    assert tuned.final_distance.value == baseline.final_distance.value
    assert tuned.summary_groups() == baseline.summary_groups()
    assert {r.scoring_path for r in baseline.steps} == {"fast"}
    assert {r.scoring_path for r in tuned.steps} == {"fast+incremental"}


# -- the representation axis: legacy ≡ IR ------------------------------------------


def _steps_fingerprint(result):
    """Everything a mode switch could perturb, captured bit-exactly."""
    return {
        "merged": [r.merged for r in result.steps],
        "new_annotations": [r.new_annotation for r in result.steps],
        "sizes": [r.size_after for r in result.steps],
        "final_size": result.final_size,
        "final_distance": result.final_distance.value,
        "final_normalized": result.final_distance.normalized,
        "stop_reason": result.stop_reason,
        "groups": result.summary_groups(),
    }


def _run_in_mode(temporary_mode, runner):
    with _ir.mode(temporary_mode):
        return _steps_fingerprint(runner())


@pytest.mark.parametrize("seed", [3, 9])
@pytest.mark.parametrize(
    "knobs",
    [
        dict(parallelism=0, incremental="off"),
        dict(parallelism=0, incremental="on"),
        dict(parallelism=2, incremental="off", parallel_threshold=1),
        dict(parallelism=2, incremental="on", parallel_threshold=1),
        dict(parallelism=0, incremental="on", max_enumerate=0, distance_samples=64),
    ],
    ids=("serial", "incremental", "parallel", "parallel+incremental", "sampled"),
)
def test_greedy_ir_vs_legacy_bit_identical(seed, knobs):
    """The IR axis of the differential grid: under every engine knob
    combination a greedy run must be *bit*-identical between the
    interned and the legacy representation -- same merges, same sizes,
    same exact distance floats."""

    def runner():
        return Summarizer(
            movielens_problem(seed),
            SummarizationConfig(w_dist=0.7, max_steps=5, seed=0, **knobs),
        ).run()

    assert _run_in_mode(_ir.MODE_IR, runner) == _run_in_mode(
        _ir.MODE_LEGACY, runner
    )


@pytest.mark.parametrize("monoid_name", sorted(MONOIDS))
def test_random_problems_ir_vs_legacy_bit_identical(monoid_name):
    def runner():
        return Summarizer(
            random_problem(19, MONOIDS[monoid_name], n_terms=16),
            SummarizationConfig(w_dist=0.6, max_steps=4, seed=0),
        ).run()

    assert _run_in_mode(_ir.MODE_IR, runner) == _run_in_mode(
        _ir.MODE_LEGACY, runner
    )


def test_beam_ir_vs_legacy_bit_identical():
    def runner():
        return BeamSummarizer(
            movielens_problem(3),
            SummarizationConfig(w_dist=0.7, max_steps=4, seed=0),
            beam_width=2,
        ).run()

    assert _run_in_mode(_ir.MODE_IR, runner) == _run_in_mode(
        _ir.MODE_LEGACY, runner
    )


def test_one_step_scores_ir_vs_legacy_bit_identical():
    """Candidate-level differential: every path's per-candidate scores
    must match exactly across the representation switch."""

    def one_step():
        problem = random_problem(37, SUM, n_terms=16)
        computer = make_computer(problem)
        current = problem.expression
        mapping = MappingState(sorted(current.annotation_names()))
        candidates = enumerate_candidates(
            current, problem.universe, problem.constraint
        )
        serial = FastStepScorer(computer, current, mapping, problem.universe)
        incremental = IncrementalStepScorer(
            computer, current, mapping, problem.universe
        )
        return [
            (
                candidate.parts,
                serial.score(candidate.parts),
                incremental.score(candidate.parts),
            )
            for candidate in candidates
        ]

    with _ir.mode(_ir.MODE_IR):
        interned = one_step()
    with _ir.mode(_ir.MODE_LEGACY):
        legacy = one_step()
    assert len(interned) == len(legacy)
    for (parts_a, serial_a, inc_a), (parts_b, serial_b, inc_b) in zip(
        interned, legacy
    ):
        assert parts_a == parts_b
        assert serial_a[0] == serial_b[0]
        assert serial_a[1].value == serial_b[1].value
        assert inc_a[0] == inc_b[0]
        assert inc_a[1].value == inc_b[1].value


# -- fallback regression -----------------------------------------------------------


def test_fast_path_bailing_mid_run_falls_back_to_naive(monkeypatch):
    """If the scorer dies partway through a step the engine must score
    the whole step naively -- no crash, no skipped candidates."""
    problem = random_problem(31, MAX)
    computer = make_computer(problem)
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    candidates = enumerate_candidates(current, problem.universe, problem.constraint)
    reference = naive_scores(problem, computer, current, mapping, candidates)

    calls = {"n": 0}
    original_score = FastStepScorer.score

    def flaky_score(self, parts):
        calls["n"] += 1
        if calls["n"] > 3:
            raise RuntimeError("fast path bailed mid-run")
        return original_score(self, parts)

    monkeypatch.setattr(FastStepScorer, "score", flaky_score)
    engine, scores = engine_scores(
        problem, computer, current, mapping, candidates,
        parallelism=0, incremental=False,
    )
    assert engine.last_path == ScoringEngine.PATH_NAIVE
    assert calls["n"] == 4, "the fast path was attempted and bailed"
    assert_distances_match(scores, reference, "fallback")


def test_summarizer_survives_broken_fast_path(monkeypatch):
    """A full greedy run with a permanently broken fast path completes
    on the naive path and reproduces the unbroken merge sequence."""
    expected = Summarizer(
        movielens_problem(3), SummarizationConfig(w_dist=0.7, max_steps=4, seed=0)
    ).run()

    def broken_score(self, parts):
        raise RuntimeError("broken scorer")

    monkeypatch.setattr(FastStepScorer, "score", broken_score)
    monkeypatch.setattr(IncrementalStepScorer, "score", broken_score)
    monkeypatch.setattr(IncrementalStepScorer, "score_detail", broken_score)
    result = Summarizer(
        movielens_problem(3), SummarizationConfig(w_dist=0.7, max_steps=4, seed=0)
    ).run()
    assert [r.merged for r in result.steps] == [r.merged for r in expected.steps]
    assert {r.scoring_path for r in result.steps} == {"naive"}
    assert result.final_distance.value == pytest.approx(
        expected.final_distance.value, abs=1e-12
    )


# -- the carry axis: cross-step candidate carry ≡ fresh per-step runs --------------


def _full_fingerprint(result):
    """The steps fingerprint plus every per-step recorded float."""
    fingerprint = _steps_fingerprint(result)
    fingerprint["step_distances"] = [
        r.distance_after.value if r.distance_after is not None else None
        for r in result.steps
    ]
    fingerprint["n_candidates"] = [r.n_candidates for r in result.steps]
    return fingerprint


_ENGINE_KNOBS = [
    dict(parallelism=0, incremental="off"),
    dict(parallelism=0, incremental="on"),
    dict(parallelism=2, incremental="off", parallel_threshold=1),
    dict(parallelism=2, incremental="on", parallel_threshold=1),
    dict(parallelism=0, incremental="on", max_enumerate=0, distance_samples=64),
]
_ENGINE_KNOB_IDS = (
    "serial",
    "incremental",
    "parallel",
    "parallel+incremental",
    "sampled",
)


@pytest.mark.parametrize("ir_mode", [_ir.MODE_LEGACY, _ir.MODE_IR])
@pytest.mark.parametrize("knobs", _ENGINE_KNOBS, ids=_ENGINE_KNOB_IDS)
@pytest.mark.parametrize("seed", [3, 9])
def test_greedy_carry_bit_identical(seed, knobs, ir_mode, kernel):
    """The carry axis of the differential grid: with cross-step
    candidate carry on, a greedy run must be *bit*-identical to the
    carry-off (seed) run -- same merges, sizes and exact distance
    floats -- under every engine knob and representation mode."""

    def runner(carry):
        return Summarizer(
            movielens_problem(seed),
            SummarizationConfig(w_dist=0.7, max_steps=6, seed=0, carry=carry, **knobs),
        ).run()

    with _ir.mode(ir_mode):
        off = _full_fingerprint(runner("off"))
        on = _full_fingerprint(runner("on"))
    assert on == off


@needs_numpy
@pytest.mark.parametrize("knobs", _ENGINE_KNOBS, ids=_ENGINE_KNOB_IDS)
def test_greedy_run_bit_identical_across_kernels(knobs):
    """The tentpole contract end-to-end: a full greedy run under the
    accelerated kernels reproduces the python-kernel run bit for bit --
    same merges, same sizes, same exact distance floats -- on every
    engine path.  The native backend joins the comparison whenever its
    probe succeeds on this host."""

    def runner():
        return Summarizer(
            movielens_problem(3),
            SummarizationConfig(w_dist=0.7, max_steps=6, seed=0, **knobs),
        ).run()

    with kernels.backend(kernels.MODE_PYTHON):
        reference = _full_fingerprint(runner())
    with kernels.backend(kernels.MODE_NUMPY):
        vectorized = _full_fingerprint(runner())
    assert vectorized == reference
    if kernels.native_available():
        with kernels.backend(kernels.MODE_NATIVE):
            compiled = _full_fingerprint(runner())
        assert compiled == reference


@pytest.mark.parametrize("monoid_name", sorted(MONOIDS))
def test_random_problems_carry_bit_identical(monoid_name):
    def runner(carry):
        return Summarizer(
            random_problem(19, MONOIDS[monoid_name], n_terms=16),
            SummarizationConfig(w_dist=0.6, max_steps=4, seed=0, carry=carry),
        ).run()

    assert _full_fingerprint(runner("on")) == _full_fingerprint(runner("off"))


@pytest.mark.parametrize("scoring", ["normalized", "ordinal"])
def test_carry_respects_scoring_strategy(scoring):
    """Ordinal scoring disables the delta score carry (rank ties
    compare raw floats) but keeps the pool carry -- output must match
    the carry-off run either way."""

    def runner(carry):
        return Summarizer(
            movielens_problem(3),
            SummarizationConfig(
                w_dist=0.7, max_steps=5, seed=0, scoring=scoring, carry=carry
            ),
        ).run()

    assert _full_fingerprint(runner("on")) == _full_fingerprint(runner("off"))


@pytest.mark.parametrize("ir_mode", [_ir.MODE_LEGACY, _ir.MODE_IR])
@pytest.mark.parametrize("seed", [3, 9])
def test_beam_carry_bit_identical(seed, ir_mode):
    def runner(carry):
        return BeamSummarizer(
            movielens_problem(seed),
            SummarizationConfig(
                w_dist=0.7, max_steps=5, seed=0, carry=carry, candidate_cap=24
            ),
            beam_width=2,
        ).run()

    with _ir.mode(ir_mode):
        off = _full_fingerprint(runner("off"))
        on = _full_fingerprint(runner("on"))
    assert on == off


@pytest.mark.parametrize("seed", [3, 9])
def test_lazy_matches_eager_selection(seed):
    """Lazy-greedy selection must pick the exact same merge sequence
    (and record the same fresh winner measurements) as the eager run,
    while re-scoring only a fraction of the candidates."""

    def runner(**knobs):
        return Summarizer(
            movielens_problem(seed),
            SummarizationConfig(w_dist=0.7, max_steps=6, seed=0, **knobs),
        ).run()

    eager = runner(carry="off")
    lazy = runner(carry="on", lazy="on")
    assert _full_fingerprint(lazy) == _full_fingerprint(eager)
    rescored = sum(r.n_rescored for r in lazy.steps[1:])
    total = sum(r.n_candidates for r in lazy.steps[1:])
    assert rescored < total, "lazy selection never skipped a re-score"


def test_lazy_stale_scores_are_lower_bounds():
    """The soundness invariant behind the lazy queue (Prop 4.2.2):
    after applying a merge, every surviving candidate's *stale*
    distance estimate is a lower bound on its fresh re-score, and the
    exact-size carry keeps the size component exact -- so the stale
    queue key never exceeds the fresh one."""
    for monoid_name in sorted(MONOIDS):
        problem = random_problem(11, MONOIDS[monoid_name], n_terms=16)
        computer = make_computer(problem)
        current = problem.expression
        mapping = MappingState(sorted(current.annotation_names()))
        for _ in range(3):
            candidates = enumerate_candidates(
                current, problem.universe, problem.constraint
            )
            if len(candidates) < 2:
                break
            scorer = IncrementalStepScorer(
                computer, current, mapping, problem.universe
            )
            stale = {c.parts: scorer.score(c.parts) for c in candidates}
            chosen = candidates[0]
            summary = problem.universe.new_summary(
                [problem.universe[name] for name in chosen.parts],
                label=chosen.proposal.label,
            )
            step_mapping = {name: summary.name for name in chosen.parts}
            current = current.apply_mapping(step_mapping)
            mapping = mapping.compose(step_mapping)
            scorer.advance(chosen.parts, summary.name, current, mapping)
            merged = set(chosen.parts)
            for candidate in candidates:
                if merged.intersection(candidate.parts):
                    continue
                old_size, old_estimate = stale[candidate.parts]
                new_size, new_estimate = scorer.score(candidate.parts)
                assert old_estimate.value <= new_estimate.value + 1e-12, (
                    monoid_name,
                    candidate.parts,
                )
                # The exact-shift size carry only claims candidates the
                # engine's neighborhood predicate marks disjoint (a
                # merge can enable joint term collapses otherwise).
                if not scorer.candidate_intersects(candidate.parts):
                    assert new_size == old_size + scorer.last_size_shift


def test_lazy_requires_normalized_scoring_and_carry():
    with pytest.raises(ValueError):
        SummarizationConfig(lazy="on", scoring="ordinal")
    with pytest.raises(ValueError):
        SummarizationConfig(lazy="on", carry="off")


def test_carry_counters_partition_each_step():
    """last_carried + last_rescored must partition every step's
    candidate set, and the per-step record must expose the re-score
    count."""
    result = Summarizer(
        movielens_problem(3),
        SummarizationConfig(w_dist=0.7, max_steps=5, seed=0, carry="on"),
    ).run()
    for record in result.steps:
        assert 0 <= record.n_rescored <= record.n_candidates
    assert result.steps[0].n_rescored == result.steps[0].n_candidates


def test_pool_invalidation_falls_back_to_fresh_enumeration(monkeypatch):
    """A poisoned pool maintenance step must not change the output:
    the pool invalidates itself and the next step re-enumerates."""
    from repro.core.pool import CandidatePool

    expected = _full_fingerprint(
        Summarizer(
            movielens_problem(3),
            SummarizationConfig(w_dist=0.7, max_steps=5, seed=0, carry="off"),
        ).run()
    )

    def broken_maintain(self, merged, new_name, new_expression):
        raise RuntimeError("maintenance poisoned")

    monkeypatch.setattr(CandidatePool, "_maintain", broken_maintain)
    result = Summarizer(
        movielens_problem(3),
        SummarizationConfig(w_dist=0.7, max_steps=5, seed=0, carry="on"),
    ).run()
    assert _full_fingerprint(result) == expected
