"""Beam-search summarization."""

import pytest

from repro.core import SummarizationConfig, Summarizer
from repro.core.beam import BeamSummarizer
from repro.datasets import DDPConfig, MovieLensConfig, generate_ddp, generate_movielens


def movielens_problem(seed):
    return generate_movielens(
        MovieLensConfig(n_users=12, n_movies=6, seed=seed)
    ).problem()


class TestBeamWidthOne:
    @pytest.mark.parametrize("seed", [3, 9, 21])
    def test_matches_greedy(self, seed):
        config = SummarizationConfig(w_dist=0.7, max_steps=5, seed=0)
        beam = BeamSummarizer(movielens_problem(seed), config, beam_width=1).run()
        greedy = Summarizer(movielens_problem(seed), config).run()
        assert beam.final_size == greedy.final_size
        assert beam.final_distance.normalized == pytest.approx(
            greedy.final_distance.normalized
        )
        assert [r.merged for r in beam.steps] == [r.merged for r in greedy.steps]


class TestWiderBeams:
    @pytest.mark.parametrize("seed", [3, 9])
    def test_never_worse_than_greedy(self, seed):
        config = SummarizationConfig(w_dist=1.0, max_steps=6, seed=0)
        wide = BeamSummarizer(movielens_problem(seed), config, beam_width=4).run()
        greedy = Summarizer(movielens_problem(seed), config).run()
        # Same step count; the wide beam's chosen path scores at least
        # as well under the CandidateScore it optimizes.
        assert wide.n_steps == greedy.n_steps
        assert (
            wide.final_distance.normalized
            <= greedy.final_distance.normalized + 1e-9
        )

    def test_step_records_form_a_single_path(self):
        config = SummarizationConfig(w_dist=0.5, max_steps=4, seed=0)
        result = BeamSummarizer(movielens_problem(5), config, beam_width=3).run()
        assert [record.step for record in result.steps] == list(
            range(1, result.n_steps + 1)
        )
        replayed = result.at_step(result.n_steps)
        assert replayed.size() == result.final_size


class TestValidation:
    def test_width_positive(self):
        with pytest.raises(ValueError, match="at least 1"):
            BeamSummarizer(movielens_problem(1), SummarizationConfig(), beam_width=0)

    def test_naive_fallback_when_batch_scorer_inapplicable(self):
        # DDP problems fail the batch-scorer preconditions; the engine
        # must score them through the naive path instead of raising.
        instance = generate_ddp(DDPConfig(seed=1))
        result = BeamSummarizer(
            instance.problem(),
            SummarizationConfig(max_steps=2),
            beam_width=2,
        ).run()
        assert result.n_steps >= 1
        assert all(record.scoring_path == "naive" for record in result.steps)
