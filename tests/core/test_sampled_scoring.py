"""Differential proof obligations for the bit-packed sampled scorer.

:class:`SampledStepScorer` must be *bit-identical* to the reference
sampler (:meth:`DistanceComputer.sampled`) under a shared seed: both
draw the same valuation sequence from the same RNG and accumulate
``weight x VAL-FUNC`` in flat draw order, so every candidate's
estimate -- value, normalization, sample count, exactness flag --
matches exactly, not approximately.  The suite pins that pairing at
three levels:

* per-candidate, against a fresh reference computer whose RNG replays
  the scorer's batch draw (SUM/MAX/COUNT, guards, group merges,
  sparse and dense accumulators);
* per-step through the engine (dispatch paths, serial ≡ parallel,
  carry on ≡ off, lazy ≡ eager, batch pinning across ``advance``);
* end-to-end through greedy and beam runs, replaying every recorded
  step distance with a reference computer.

A statistical test closes the loop on Prop 4.1.2 itself: over many
seeded batches the estimates honor the ``(ε, δ)`` guarantee against
the exact enumerated distance.
"""

import random
from array import array

import pytest

from repro.core import (
    AllowAll,
    BeamSummarizer,
    Disagreement,
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    MappingState,
    SampledStepScorer,
    ScoringEngine,
    SummarizationConfig,
    SummarizationProblem,
    Summarizer,
    chebyshev_sample_size,
    enumerate_candidates,
    virtual_summary,
)
from repro.core import kernels
from repro.core.engine import _OverlayUniverse
from repro.core.fast_distance import FastStepScorer
from repro.provenance import (
    COUNT,
    MAX,
    SUM,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    ExplicitValuations,
    Guard,
    TensorSum,
    Term,
    Valuation,
)

MONOIDS = {"MAX": MAX, "SUM": SUM, "COUNT": COUNT}


# -- instance generation -----------------------------------------------------------


def random_problem(
    seed,
    monoid,
    val_func_cls=EuclideanDistance,
    n_users=6,
    n_terms=14,
    with_guards=False,
    group_merges=False,
    valuations=None,
):
    """A randomized TensorSum summarization problem over one domain.

    Integer term values keep the weighted sums exact, so bit-identity
    between the scorer and the reference sampler is assertable with
    ``==`` rather than a tolerance.
    """
    rng = random.Random(seed)
    universe = AnnotationUniverse()
    names = [f"U{i}" for i in range(n_users)]
    for name in names:
        universe.register(
            Annotation(name, "user", {"g": rng.choice("AB"), "r": rng.choice("XY")})
        )
    groups = list(names) if group_merges else ["g0", "g1", "g2", None]
    terms = []
    for _ in range(n_terms):
        annotations = tuple(rng.sample(names, rng.choice([1, 1, 2])))
        guards = ()
        if with_guards and rng.random() < 0.4:
            guards = (
                Guard(
                    (rng.choice(names),),
                    rng.choice([1, 5]),
                    rng.choice([">", ">=", "=="]),
                    rng.choice([0, 2]),
                ),
            )
        terms.append(
            Term(
                annotations,
                float(rng.randint(0, 5)),
                group=rng.choice(groups),
                guards=guards,
            )
        )
    expression = TensorSum(terms, monoid)
    if valuations is None:
        valuations = CancelSingleAnnotation(universe, domains=("user",))
    return SummarizationProblem(
        expression=expression,
        universe=universe,
        valuations=valuations,
        val_func=val_func_cls(monoid),
        combiners=DomainCombiners(),
        constraint=AllowAll(),
        description=f"random seed={seed}",
    )


def sampling_computer(problem, seed, batch=None, **kwargs):
    """A computer forced onto the sampled path (``max_enumerate=0``)."""
    return DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
        max_enumerate=0,
        n_samples=batch,
        rng=random.Random(seed),
        **kwargs,
    )


def materialized(problem, current, mapping, candidate):
    """The candidate's summary expression, mapping and overlay universe."""
    parts = [problem.universe[name] for name in candidate.parts]
    virtual = virtual_summary(parts, candidate.proposal)
    overlay = _OverlayUniverse(problem.universe, {virtual.name: virtual})
    step = {name: virtual.name for name in candidate.parts}
    return current.apply_mapping(step), mapping.compose(step), overlay


def reference_sampled(problem, current, mapping, candidate, batch, seed):
    """The reference sampler's estimate with a *fresh* RNG at ``seed``.

    The scorer drew its shared batch from a Random(seed) in reference
    draw order, so a fresh reference computer replays the exact same
    valuation sequence.
    """
    computer = sampling_computer(problem, seed, batch=batch)
    expression, composed, overlay = materialized(problem, current, mapping, candidate)
    return expression.size(), computer.sampled(expression, composed, universe=overlay)


BATCH = 96
SEED = 123

KERNEL_AXIS = [
    kernels.MODE_PYTHON,
    pytest.param(
        kernels.MODE_NUMPY,
        marks=pytest.mark.skipif(
            not kernels.numpy_available(), reason="numpy backend unavailable"
        ),
    ),
    pytest.param(
        kernels.MODE_NATIVE,
        marks=pytest.mark.skipif(
            not kernels.native_available(), reason="native backend unavailable"
        ),
    ),
]

needs_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy backend unavailable"
)

needs_native = pytest.mark.skipif(
    not kernels.native_available(), reason="native backend unavailable"
)


@pytest.fixture(params=KERNEL_AXIS)
def kernel(request):
    """Run the test under each kernel backend (python x numpy x native)."""
    with kernels.backend(request.param) as resolved:
        assert resolved == request.param
        yield resolved


def step_state(problem):
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    candidates = enumerate_candidates(current, problem.universe, problem.constraint)
    assert candidates, "instance must produce candidates"
    return current, mapping, candidates


# -- unit level: scorer ≡ reference sampler, bit for bit ---------------------------


@pytest.mark.parametrize("seed", [0, 7, 42])
@pytest.mark.parametrize("monoid_name", sorted(MONOIDS))
def test_scorer_matches_reference_sampler_bit_identical(monoid_name, seed, kernel):
    problem = random_problem(seed, MONOIDS[monoid_name])
    computer = sampling_computer(problem, SEED, batch=BATCH)
    current, mapping, candidates = step_state(problem)
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    assert scorer.batch_size == BATCH
    for candidate in candidates:
        size, estimate = scorer.score(candidate.parts)
        ref_size, reference = reference_sampled(
            problem, current, mapping, candidate, BATCH, SEED
        )
        assert size == ref_size
        assert estimate.value == reference.value, candidate.parts
        assert estimate.normalized == reference.normalized, candidate.parts
        assert estimate.n_valuations == reference.n_valuations == BATCH
        assert not estimate.exact and not reference.exact


@pytest.mark.parametrize(
    "variant", ["guards", "group_merges", "dense"], ids=str
)
def test_scorer_matches_reference_on_structural_variants(variant):
    problem = random_problem(
        5,
        SUM,
        with_guards=(variant == "guards"),
        group_merges=(variant == "group_merges"),
    )
    computer = sampling_computer(problem, SEED, batch=BATCH)
    current, mapping, candidates = step_state(problem)
    sparse = None if variant != "dense" else False
    scorer = SampledStepScorer(
        computer, current, mapping, problem.universe, sparse=sparse
    )
    for candidate in candidates:
        size, estimate = scorer.score(candidate.parts)
        ref_size, reference = reference_sampled(
            problem, current, mapping, candidate, BATCH, SEED
        )
        assert size == ref_size
        assert estimate.value == reference.value, (variant, candidate.parts)


def test_sparse_and_dense_accumulators_agree():
    problem = random_problem(9, MAX)
    current, mapping, candidates = step_state(problem)
    sparse = SampledStepScorer(
        sampling_computer(problem, SEED, batch=BATCH),
        current, mapping, problem.universe, sparse=True,
    )
    dense = SampledStepScorer(
        sampling_computer(problem, SEED, batch=BATCH),
        current, mapping, problem.universe, sparse=False,
    )
    for candidate in candidates:
        size_s, est_s = sparse.score(candidate.parts)
        size_d, est_d = dense.score(candidate.parts)
        assert size_s == size_d
        assert est_s.value == est_d.value, candidate.parts


# -- applicability gate ------------------------------------------------------------


def test_applicability_requires_unenumerable_class():
    problem = random_problem(1, SUM)
    args = (
        problem.expression,
        problem.val_func,
        problem.combiners,
        problem.valuations,
        problem.universe,
    )
    # Small class, generous budget: the exact kernel owns the step.
    assert not SampledStepScorer.applicable(*args, 512)
    # Enumeration forbidden: the sampled kernel takes over.
    assert SampledStepScorer.applicable(*args, 0)
    assert FastStepScorer.applicable(*args, len(problem.valuations))


# -- engine dispatch ---------------------------------------------------------------


def engine_for(problem, computer, **knobs):
    return ScoringEngine(problem, SummarizationConfig(**knobs), computer)


def test_engine_dispatches_sampled_paths():
    problem = random_problem(2, SUM)
    current, mapping, candidates = step_state(problem)

    engine = engine_for(
        problem,
        sampling_computer(problem, SEED, batch=BATCH),
        max_enumerate=0,
        distance_samples=BATCH,
    )
    engine.measure(candidates, current, mapping)
    assert engine.last_path == ScoringEngine.PATH_SAMPLED_INCREMENTAL
    assert engine.last_sample_batch == BATCH
    assert engine.last_sample_variance >= 0.0

    engine = engine_for(
        problem,
        sampling_computer(problem, SEED, batch=BATCH),
        max_enumerate=0,
        distance_samples=BATCH,
        incremental="off",
    )
    engine.measure(candidates, current, mapping)
    assert engine.last_path == ScoringEngine.PATH_SAMPLED

    engine = engine_for(
        problem,
        sampling_computer(problem, SEED, batch=BATCH),
        max_enumerate=0,
        distance_samples=BATCH,
        sample_sharing="off",
    )
    engine.measure(candidates, current, mapping)
    assert engine.last_path == ScoringEngine.PATH_NAIVE

    # Small class: sampling never hijacks the exact kernel.
    engine = engine_for(problem, sampling_computer(problem, SEED, batch=BATCH))
    engine.measure(candidates, current, mapping)
    assert engine.last_path == ScoringEngine.PATH_FAST_INCREMENTAL


def test_engine_sampled_measurements_match_reference():
    problem = random_problem(4, COUNT)
    current, mapping, candidates = step_state(problem)
    engine = engine_for(
        problem,
        sampling_computer(problem, SEED, batch=BATCH),
        max_enumerate=0,
        distance_samples=BATCH,
        incremental="off",
    )
    measured, _ = engine.measure(candidates, current, mapping)
    for scored, candidate in zip(measured, candidates):
        ref_size, reference = reference_sampled(
            problem, current, mapping, candidate, BATCH, SEED
        )
        assert scored.size == ref_size
        assert scored.distance.value == reference.value


def test_serial_and_parallel_sampled_runs_bit_identical(kernel):
    problem = random_problem(6, SUM, n_terms=18)
    current, mapping, candidates = step_state(problem)

    def run(parallelism):
        engine = engine_for(
            problem,
            sampling_computer(problem, SEED, batch=BATCH),
            max_enumerate=0,
            distance_samples=BATCH,
            incremental="off",
            parallelism=parallelism,
            parallel_threshold=1,
        )
        measured, _ = engine.measure(candidates, current, mapping)
        return engine, [
            (scored.size, scored.distance.value, scored.distance.normalized)
            for scored in measured
        ]

    serial_engine, serial = run(0)
    parallel_engine, parallel = run(2)
    assert serial_engine.last_path == ScoringEngine.PATH_SAMPLED
    assert parallel_engine.last_path == ScoringEngine.PATH_SAMPLED
    assert serial == parallel


# -- batch pinning across steps ----------------------------------------------------


def apply_first(problem, current, mapping, candidates):
    chosen = candidates[0]
    summary = problem.universe.new_summary(
        [problem.universe[name] for name in chosen.parts],
        label=chosen.proposal.label,
    )
    step_mapping = {name: summary.name for name in chosen.parts}
    return (
        chosen,
        summary,
        current.apply_mapping(step_mapping),
        mapping.compose(step_mapping),
    )


def test_advance_never_redraws_the_batch():
    problem = random_problem(8, SUM)
    computer = sampling_computer(problem, SEED, batch=BATCH)
    current, mapping, candidates = step_state(problem)
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    batch = scorer._batch
    rng_state = computer.rng.getstate()
    for candidate in candidates:
        scorer.score(candidate.parts)
    chosen, summary, current, mapping = apply_first(
        problem, current, mapping, candidates
    )
    scorer.advance(chosen.parts, summary.name, current, mapping)
    assert scorer._batch is batch, "advance must keep the pinned batch"
    assert computer.rng.getstate() == rng_state, "no hidden draws"
    survivors = [
        c for c in enumerate_candidates(current, problem.universe, problem.constraint)
    ]
    assert survivors
    scorer.score(survivors[0].parts)
    assert scorer._batch is batch


def test_engine_reuses_carried_batch_and_reports_it():
    problem = random_problem(8, SUM)
    engine = engine_for(
        problem,
        sampling_computer(problem, SEED, batch=BATCH),
        max_enumerate=0,
        distance_samples=BATCH,
    )
    current, mapping, candidates = step_state(problem)
    engine.measure(candidates, current, mapping)
    assert not engine.last_batch_reused, "first step draws the batch"
    first_batch = engine._scorer._batch
    chosen, summary, current, mapping = apply_first(
        problem, current, mapping, candidates
    )
    engine.advance(chosen.parts, summary.name, current, mapping)
    candidates = enumerate_candidates(current, problem.universe, problem.constraint)
    engine.measure(candidates, current, mapping)
    assert engine.last_path == ScoringEngine.PATH_SAMPLED_INCREMENTAL
    assert engine.last_batch_reused
    assert engine._scorer._batch is first_batch


def test_pinned_batch_masks_survive_advance():
    """With the batch pinned, ``advance`` must not re-derive dead masks
    for terms the merge left untouched -- the Term-keyed memo makes the
    rebuild cost proportional to the merge, not to the whole table."""
    problem = random_problem(8, SUM)
    computer = sampling_computer(problem, SEED, batch=BATCH)
    current, mapping, candidates = step_state(problem)
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    first_builds = scorer.mask_builds
    assert first_builds == len(scorer._terms)
    for candidate in candidates:
        scorer.score(candidate.parts)
    assert scorer.mask_builds == first_builds, "scoring must not rebuild masks"
    chosen, summary, current, mapping = apply_first(
        problem, current, mapping, candidates
    )
    scorer.advance(chosen.parts, summary.name, current, mapping)
    assert scorer._batch is not None
    rebuilt = scorer.mask_builds - first_builds
    assert rebuilt < len(scorer._terms), (
        "advance re-derived masks for terms the merge did not rewrite"
    )


@needs_numpy
def test_sampled_run_bit_identical_across_kernels():
    def run():
        problem = random_problem(6, SUM, n_terms=18)
        return Summarizer(
            problem,
            SummarizationConfig(
                w_dist=0.7,
                max_steps=4,
                seed=0,
                max_enumerate=0,
                distance_samples=BATCH,
            ),
        ).run()

    def fingerprint(result):
        return [
            (
                record.merged,
                record.size_after,
                None
                if record.distance_after is None
                else record.distance_after.value,
            )
            for record in result.steps
        ]

    with kernels.backend(kernels.MODE_PYTHON):
        reference = fingerprint(run())
    with kernels.backend(kernels.MODE_NUMPY):
        vectorized = fingerprint(run())
    assert vectorized == reference
    if kernels.native_available():
        with kernels.backend(kernels.MODE_NATIVE):
            compiled = fingerprint(run())
        assert compiled == reference


def test_stale_sampled_distances_are_lower_bounds():
    """Prop 4.2.2 over the *pinned* batch: a carried candidate's stale
    estimate never exceeds its fresh re-score -- the invariant the
    lazy queue and the delta carry rely on under sampling."""
    for monoid_name in sorted(MONOIDS):
        problem = random_problem(11, MONOIDS[monoid_name], n_terms=16)
        computer = sampling_computer(problem, SEED, batch=BATCH)
        current, mapping, candidates = step_state(problem)
        scorer = SampledStepScorer(computer, current, mapping, problem.universe)
        stale = {c.parts: scorer.score(c.parts) for c in candidates}
        chosen, summary, current, mapping = apply_first(
            problem, current, mapping, candidates
        )
        scorer.advance(chosen.parts, summary.name, current, mapping)
        merged = set(chosen.parts)
        for candidate in candidates:
            if merged.intersection(candidate.parts):
                continue
            _, old_estimate = stale[candidate.parts]
            _, new_estimate = scorer.score(candidate.parts)
            assert old_estimate.value <= new_estimate.value + 1e-12, (
                monoid_name,
                candidate.parts,
            )


# -- packed word layout ------------------------------------------------------------


def test_packed_views_round_trip_the_masks():
    problem = random_problem(13, MAX)
    computer = sampling_computer(problem, SEED, batch=100)  # not a 64 multiple
    current, mapping, _ = step_state(problem)
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    n_words = (scorer.batch_size + 63) // 64
    packed = scorer.packed_masks()
    assert set(packed) == set(scorer._mask)
    for key, words in packed.items():
        assert len(words) == n_words
        assert kernels.row_int(words) == kernels.row_int(scorer._mask[key])
    term_packed = scorer.packed_term_dead()
    assert len(term_packed) == len(scorer._term_dead)
    for words, mask in zip(term_packed, scorer._term_dead):
        assert len(words) == n_words
        assert kernels.row_int(words) == kernels.row_int(mask)
    # The contiguous table is the same bytes, row-major.
    table = scorer.packed_term_dead_table()
    assert table.n_rows == len(scorer._term_dead)
    assert table.words.tobytes() == b"".join(
        row.tobytes() for row in term_packed
    )


def test_packed_views_memoized_until_advance():
    """Satellite: repeated packed reads within one step must not re-pack;
    ``advance`` invalidates and the next read rebuilds exactly once."""
    problem = random_problem(8, SUM)
    computer = sampling_computer(problem, SEED, batch=BATCH)
    current, mapping, candidates = step_state(problem)
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    assert scorer.pack_builds == 0, "packing is lazy"
    first_table = scorer.packed_term_dead_table()
    first_rows = scorer.packed_term_dead()
    first_masks = scorer.packed_masks()
    for _ in range(5):
        assert scorer.packed_term_dead_table() is first_table
        assert scorer.packed_term_dead() is first_rows
        assert scorer.packed_masks() is first_masks
    assert scorer.pack_builds == 1
    chosen, summary, current, mapping = apply_first(
        problem, current, mapping, candidates
    )
    scorer.advance(chosen.parts, summary.name, current, mapping)
    second_table = scorer.packed_term_dead_table()
    assert second_table is not first_table
    assert scorer.packed_term_dead_table() is second_table
    assert scorer.pack_builds == 2
    # The fresh views reflect the post-merge term table.
    assert second_table.n_rows == len(scorer._term_dead)
    for row, mask in zip(scorer.packed_term_dead(), scorer._term_dead):
        assert kernels.row_int(row) == kernels.row_int(mask)


def test_batch_stats_match_flat_weighted_fold():
    problem = random_problem(13, SUM)
    computer = sampling_computer(problem, SEED, batch=BATCH)
    current, mapping, _ = step_state(problem)
    scorer = SampledStepScorer(computer, current, mapping, problem.universe)
    # The baseline (unmerged) distance over the batch is exactly the
    # reference sampler's estimate of the current expression itself.
    reference = sampling_computer(problem, SEED, batch=BATCH)
    estimate = reference.sampled(current, mapping)
    assert scorer.batch_mean == estimate.value
    assert scorer.batch_variance == reference.stats.last_sample_variance
    assert scorer.batch_variance >= 0.0


# -- memoized original evaluations (the per-draw cache) ----------------------------


class CountingExpression:
    """Delegating proxy that counts ``evaluate`` calls."""

    def __init__(self, inner):
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "calls", 0)

    def evaluate(self, false_set):
        object.__setattr__(self, "calls", self.calls + 1)
        return self.inner.evaluate(false_set)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def test_original_evaluations_memoized_across_calls_and_candidates():
    problem = random_problem(15, SUM)
    counting = CountingExpression(problem.expression)
    computer = DistanceComputer(
        counting,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
        max_enumerate=0,
        n_samples=64,
        rng=random.Random(SEED),
    )
    current, mapping, candidates = step_state(problem)
    distinct = len(problem.valuations)
    for candidate in candidates[:4]:
        expression, composed, overlay = materialized(
            problem, current, mapping, candidate
        )
        computer.sampled(expression, composed, universe=overlay)
    # 4 candidates x 64 draws, but the cancel-one class has only
    # `distinct` members: the original is evaluated at most once each.
    assert counting.calls <= distinct
    calls_after_reference = counting.calls
    # The shared-batch scorer rides the same memo.
    SampledStepScorer(computer, current, mapping, problem.universe)
    assert counting.calls <= distinct
    assert counting.calls >= calls_after_reference


# -- sampling budget (spread-aware Chebyshev, block rounding, clamps) --------------


class _SpreadValFunc:
    """Stub VAL-FUNC: only ``max_error`` matters for the budget."""

    def __init__(self, spread):
        self._spread = spread

    def max_error(self, expression):
        return self._spread


def _budget_computer(val_func, n_valuations=100, **kwargs):
    universe = AnnotationUniverse()
    valuations = ExplicitValuations(
        [Valuation({f"U{i}": 0.0}) for i in range(n_valuations)]
    )
    return DistanceComputer(
        TensorSum([Term(("U0",), 1.0)], SUM),
        valuations,
        val_func,
        DomainCombiners(),
        universe,
        max_enumerate=0,
        **kwargs,
    )


def test_chebyshev_sample_size_spread_scaling():
    # ceil(spread² / (4·(1-δ)·ε²)), on floats: 1/0.001 lands at 1001.
    assert chebyshev_sample_size(0.05, 0.9) == 1001
    assert chebyshev_sample_size(0.05, 0.9, spread=0.5) == 251
    assert chebyshev_sample_size(0.05, 0.9, spread=1.0) == 1001


def test_sample_budget_pins_explicit_count_verbatim():
    computer = _budget_computer(_SpreadValFunc(1.0), n_samples=5)
    assert computer.sample_budget() == 5  # never block-rounded


def test_sample_budget_threads_val_func_spread():
    # Worst-case spread: 1001 -> block-64 rounds to 1024.
    assert _budget_computer(_SpreadValFunc(1.0)).sample_budget() == 1024
    # Tighter spread shrinks the budget quadratically: 251 -> 256.
    assert _budget_computer(_SpreadValFunc(0.5)).sample_budget() == 256
    # Spreads above 1.0 are capped (normalized scale), never inflate.
    assert _budget_computer(_SpreadValFunc(3.0)).sample_budget() == 1024
    # Block size 1 keeps the raw Chebyshev bound.
    assert (
        _budget_computer(_SpreadValFunc(1.0), sample_block=1).sample_budget() == 1001
    )


def test_sample_budget_clamps_at_enumeration_crossover():
    computer = _budget_computer(_SpreadValFunc(1.0), n_valuations=10)
    assert computer.sample_budget() == 160  # 16 x |V_Ann|


def test_sample_knob_validation():
    with pytest.raises(ValueError):
        SummarizationConfig(sample_sharing="sometimes")
    with pytest.raises(ValueError):
        SummarizationConfig(sample_block=0)
    assert SummarizationConfig(sample_sharing="off").sample_sharing is False
    assert SummarizationConfig(sample_sharing="on").sample_sharing is True
    assert SummarizationConfig(sample_sharing="auto").sample_sharing is None


# -- statistical guarantee (Prop 4.1.2) --------------------------------------------


def test_sampled_estimates_honor_epsilon_delta():
    """Chebyshev at (ε=0.25, δ=0.8) needs 21 samples; over 40 seeded
    batches at that size the violation rate must stay within (and in
    practice far below) the guaranteed 20%."""
    epsilon, trials, batch = 0.25, 40, chebyshev_sample_size(0.25, 0.8)
    assert batch == 21
    problem = random_problem(21, SUM, val_func_cls=Disagreement, n_users=5)
    current, mapping, candidates = step_state(problem)
    candidate = candidates[0]
    exact_computer = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
    )
    expression, composed, overlay = materialized(problem, current, mapping, candidate)
    exact = exact_computer.exact(expression, composed, universe=overlay)
    violations = 0
    for trial in range(trials):
        computer = sampling_computer(problem, 1000 + trial, batch=batch)
        scorer = SampledStepScorer(computer, current, mapping, problem.universe)
        _, estimate = scorer.score(candidate.parts)
        if abs(estimate.normalized - exact.normalized) > epsilon:
            violations += 1
    assert violations <= 0.3 * trials


# -- end-to-end replays ------------------------------------------------------------


def replay_mapping(result):
    """Iterate (step index, composed mapping) along the recorded run."""
    mapping = MappingState(sorted(result.original_expression.annotation_names()))
    if result.equivalence_mapping:
        mapping = mapping.compose(result.equivalence_mapping)
    for index, record in enumerate(result.steps, start=1):
        mapping = mapping.compose(record.step_mapping)
        yield index, record, mapping


def test_greedy_run_replays_against_reference_sampler():
    """Greedy + incremental: one pinned batch serves the whole run, so
    every recorded step distance replays with a *fresh* reference RNG
    at the run seed."""
    run_seed = 11
    problem = random_problem(3, SUM, n_users=8, n_terms=18)
    result = Summarizer(
        problem,
        SummarizationConfig(w_dist=0.7, max_steps=4, seed=run_seed, max_enumerate=0),
    ).run()
    assert result.steps, "run must take steps"
    assert {r.scoring_path for r in result.steps} == {"sampled+incremental"}
    for index, record, mapping in replay_mapping(result):
        reference = DistanceComputer(
            problem.expression,
            problem.valuations,
            problem.val_func,
            problem.combiners,
            problem.universe,
            max_enumerate=0,
            n_samples=record.distance_after.n_valuations,
            rng=random.Random(run_seed),
        )
        estimate = reference.sampled(result.at_step(index), mapping)
        assert record.distance_after.value == estimate.value, index
        assert record.distance_after.normalized == estimate.normalized, index
        assert not record.distance_after.exact


def test_beam_run_replays_against_reference_sampler():
    """Beam never advances the engine, so each step redraws its batch
    from the *continuing* RNG: one shared reference computer replays
    the whole run with sequential sampled() calls."""
    run_seed = 17
    problem = random_problem(3, SUM, n_users=8, n_terms=18)
    result = BeamSummarizer(
        problem,
        SummarizationConfig(w_dist=0.7, max_steps=3, seed=run_seed, max_enumerate=0),
        beam_width=1,
    ).run()
    assert result.steps, "run must take steps"
    batch = result.steps[0].distance_after.n_valuations
    reference = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
        max_enumerate=0,
        n_samples=batch,
        rng=random.Random(run_seed),
    )
    for index, record, mapping in replay_mapping(result):
        estimate = reference.sampled(result.at_step(index), mapping)
        assert record.distance_after.value == estimate.value, index
        assert record.distance_after.n_valuations == batch


# -- carry / lazy axes under sampling ----------------------------------------------


def _full_fingerprint(result):
    return {
        "merged": [r.merged for r in result.steps],
        "new_annotations": [r.new_annotation for r in result.steps],
        "sizes": [r.size_after for r in result.steps],
        "step_distances": [
            r.distance_after.value if r.distance_after is not None else None
            for r in result.steps
        ],
        "final_size": result.final_size,
        "final_distance": result.final_distance.value,
        "stop_reason": result.stop_reason,
        "groups": result.summary_groups(),
    }


def _sampled_run(seed, **knobs):
    problem = random_problem(seed, SUM, n_users=8, n_terms=18)
    result = Summarizer(
        problem,
        SummarizationConfig(
            w_dist=0.7, max_steps=5, seed=0, max_enumerate=0, **knobs
        ),
    ).run()
    assert {r.scoring_path for r in result.steps} <= {
        "sampled", "sampled+incremental"
    }
    return result


@pytest.mark.parametrize("seed", [3, 9])
def test_sampled_carry_bit_identical(seed):
    on = _full_fingerprint(_sampled_run(seed, carry="on"))
    off = _full_fingerprint(_sampled_run(seed, carry="off"))
    assert on == off


@pytest.mark.parametrize("seed", [3, 9])
def test_sampled_lazy_matches_eager(seed):
    eager = _sampled_run(seed, carry="off")
    lazy = _sampled_run(seed, carry="on", lazy="on")
    assert _full_fingerprint(lazy) == _full_fingerprint(eager)


def test_sample_sharing_off_still_summarizes():
    """The reference per-candidate sampler remains a complete fallback:
    same config, sharing off -- the run completes on the naive path."""
    problem = random_problem(3, SUM, n_users=8, n_terms=18)
    result = Summarizer(
        problem,
        SummarizationConfig(
            w_dist=0.7,
            max_steps=3,
            seed=0,
            max_enumerate=0,
            distance_samples=32,
            sample_sharing="off",
        ),
    ).run()
    assert result.steps
    assert {r.scoring_path for r in result.steps} == {"naive"}
