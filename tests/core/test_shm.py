"""Shared-memory publication: round-trips, lifecycle, worker payloads.

The shm tier is an execution-strategy change only -- published blocks
must round-trip bit for bit, parallel selection must stay identical to
serial, workers must return only index/size/distance triples, and no
segment may outlive its step (or its process).
"""

import glob
import logging
import os
import threading

import pytest

from repro.core import (
    DistanceComputer,
    MappingState,
    ScoringEngine,
    SummarizationConfig,
    Summarizer,
    enumerate_candidates,
    shm,
)
from repro.core import engine as engine_module
from repro.core.engine import fork_available
from repro.datasets import MovieLensConfig, generate_movielens
from repro.provenance import ir as _ir

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _shm_names():
    return glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}-*")


def test_shared_matrix_round_trips_rows():
    matrix = shm.SharedMatrix(3, 5, "test")
    try:
        rows = [[float(row * 10 + col) / 7.0 for col in range(5)] for row in range(3)]
        for index, row in enumerate(rows):
            matrix.write_row(index, row)
        for index, row in enumerate(rows):
            assert matrix.row_list(index) == row
    finally:
        matrix.destroy()
    assert matrix.segment.name not in shm.live_segment_names()


def test_shared_arena_round_trips_term_store():
    store = _ir.TermStore()
    monos = []
    for pairs in (
        [("a", 1), ("b", 2)],
        [("b", 1), ("c", 3)],
        [("a", 2)],
        [],
    ):
        monos.append(store.mono_from_name_pairs(pairs))
    arena = shm.SharedArena.publish(store)
    try:
        mapped = arena.map_store()
        assert mapped.n_monomials() == store.n_monomials()
        assert list(mapped.interner) == list(store.interner)
        for mono in monos:
            assert mapped.mono_pairs(mono) == store.mono_pairs(mono)
        # The product memo path works against the mapped columns too.
        product = mapped.mono_product(monos[0], monos[1])
        assert mapped.mono_pairs(product) == store.mono_pairs(
            store.mono_product(monos[0], monos[1])
        )
    finally:
        arena.destroy()
    assert not _shm_names()


def test_reap_stale_segments_skips_live_owners(tmp_path):
    # A segment owned by this (live) process must never be reaped.
    segment = shm.create_segment("reap", 64)
    try:
        assert shm.reap_stale_segments() == []
        assert os.path.exists(f"/dev/shm/{segment.name}")
    finally:
        shm.destroy_segment(segment)
    # A name carrying a dead pid is reaped.
    stale = f"{shm.SEGMENT_PREFIX}-999999999-test-deadbeef"
    path = f"/dev/shm/{stale}"
    with open(path, "wb") as handle:
        handle.write(b"\x00" * 16)
    try:
        assert stale in shm.reap_stale_segments()
        assert not os.path.exists(path)
    finally:
        if os.path.exists(path):
            os.unlink(path)


def _fingerprint(result):
    return [
        (
            record.merged,
            record.size_after,
            None
            if record.distance_after is None
            else record.distance_after.value,
        )
        for record in result.steps
    ]


def _run(parallelism, **knobs):
    problem = generate_movielens(
        MovieLensConfig(n_users=12, n_movies=8, seed=3)
    ).problem()
    config = SummarizationConfig(
        w_dist=0.7,
        max_steps=4,
        seed=0,
        parallelism=parallelism,
        parallel_threshold=1,
        **knobs,
    )
    return Summarizer(problem, config).run()


@needs_fork
@pytest.mark.parametrize(
    "knobs",
    [
        {},
        {"incremental": "on"},
        {"incremental": "on", "max_enumerate": 0, "distance_samples": 64},
    ],
    ids=["exact", "carry", "sampled"],
)
def test_parallel_shm_scoring_matches_serial_and_leaks_nothing(knobs):
    parallel = _run(4, **knobs)
    serial = _run(0, **knobs)
    assert _fingerprint(parallel) == _fingerprint(serial)
    assert not _shm_names()


@needs_fork
def test_workers_return_only_triples():
    problem = generate_movielens(
        MovieLensConfig(n_users=12, n_movies=8, seed=3)
    ).problem()
    computer = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
    )
    engine = ScoringEngine(
        problem,
        SummarizationConfig(
            w_dist=0.7, seed=0, parallelism=4, parallel_threshold=1
        ),
        computer,
    )
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    candidates = enumerate_candidates(
        current, problem.universe, problem.constraint
    )
    assert candidates, "instance must produce candidates"
    engine.measure(candidates, current, mapping)
    payload = engine.last_worker_payload_bytes
    assert payload >= 0, "no parallel step ran"
    # Triples only: a few dozen bytes per candidate, never the
    # n_vals-scaled accumulator payload the pickling path returned.
    assert payload < 120 * len(candidates)


@needs_fork
def test_forced_parallelism_off_main_thread_degrades_to_serial(monkeypatch):
    # Forking from a request-handler thread can snapshot a pool-queue
    # semaphore held by a sibling thread and deadlock the worker (seen
    # live against the serving tier), so the engine must fall back to
    # serial scoring -- and say so -- instead of wedging the session.
    monkeypatch.setattr(engine_module, "_FORK_UNSAFE_WARNED", False)
    records = []
    handler = logging.Handler()
    handler.emit = records.append
    logger = logging.getLogger("repro.core.engine")  # repro.<name> hierarchy
    logger.addHandler(handler)
    outcome = {}

    def run():
        try:
            outcome["result"] = _run(2)
        except BaseException as error:  # pragma: no cover - diagnostics
            outcome["error"] = error

    try:
        thread = threading.Thread(target=run, name="handler-thread")
        thread.start()
        thread.join(timeout=120)
        assert not thread.is_alive(), "threaded parallel summarize hung"
    finally:
        logger.removeHandler(handler)
    assert "error" not in outcome, outcome.get("error")
    assert _fingerprint(outcome["result"]) == _fingerprint(_run(0))
    assert any(
        "parallel_fork_unsafe" in record.getMessage() for record in records
    )
    assert not _shm_names()
