"""GroupEquivalent (Proposition 4.2.1)."""

import pytest

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    DomainConstraints,
    EuclideanDistance,
    MappingState,
    SharedAttribute,
    constrained_groups,
    equivalence_classes,
    group_equivalent,
)
from repro.provenance import (
    MAX,
    Annotation,
    AnnotationUniverse,
    CancelSingleAttribute,
    ExplicitValuations,
    TensorSum,
    Term,
    cancel,
)


@pytest.fixture
def universe():
    universe = AnnotationUniverse()
    # U1/U2 identical attribute vectors, U3 differs, U4 differs more.
    universe.register(Annotation("U1", "user", {"gender": "F", "age": "a"}))
    universe.register(Annotation("U2", "user", {"gender": "F", "age": "a"}))
    universe.register(Annotation("U3", "user", {"gender": "F", "age": "b"}))
    universe.register(Annotation("U4", "user", {"gender": "M", "age": "b"}))
    return universe


@pytest.fixture
def expression():
    return TensorSum(
        [
            Term(("U1",), 3.0, group="m"),
            Term(("U2",), 4.0, group="m"),
            Term(("U3",), 5.0, group="m"),
            Term(("U4",), 2.0, group="m"),
        ],
        MAX,
    )


def test_equivalence_classes_by_signature(universe):
    valuations = CancelSingleAttribute(universe, attributes=("gender", "age"))
    classes = equivalence_classes(["U1", "U2", "U3", "U4"], valuations)
    as_sets = {frozenset(group) for group in classes}
    assert frozenset({"U1", "U2"}) in as_sets
    assert frozenset({"U3"}) in as_sets
    assert frozenset({"U4"}) in as_sets


def test_equivalence_classes_refinement_order_irrelevant(universe):
    # The iterative-refinement proof and the signature implementation
    # agree: classes do not depend on valuation order.
    forward = CancelSingleAttribute(universe, attributes=("gender", "age"))
    backward = ExplicitValuations(list(forward)[::-1])
    as_sets = lambda classes: {frozenset(group) for group in classes}
    names = ["U1", "U2", "U3", "U4"]
    assert as_sets(equivalence_classes(names, forward)) == as_sets(
        equivalence_classes(names, backward)
    )


def test_constrained_groups_split_incompatible(universe):
    constraint = SharedAttribute(("gender",))
    annotations = [universe[name] for name in ("U1", "U2", "U4")]
    groups = constrained_groups(annotations, constraint)
    # U4 (male) cannot join U1/U2 (female); singleton groups drop out.
    assert len(groups) == 1
    members, proposal = groups[0]
    assert {a.name for a in members} == {"U1", "U2"}
    assert proposal.label == "gender=F"


def test_group_equivalent_merges_at_distance_zero(universe, expression):
    valuations = CancelSingleAttribute(universe, attributes=("gender", "age"))
    constraint = DomainConstraints({"user": SharedAttribute(("gender", "age"))})
    grouped, step, merges = group_equivalent(
        expression, universe, valuations, constraint
    )
    assert merges == 1
    assert set(step) == {"U1", "U2"}
    assert grouped.size() == 3

    # Proposition 4.2.1: the grouping is free -- distance exactly 0.
    mapping = MappingState(["U1", "U2", "U3", "U4"]).compose(step)
    computer = DistanceComputer(
        expression,
        valuations,
        EuclideanDistance(MAX),
        DomainCombiners(),
        universe,
    )
    assert computer.distance(grouped, mapping).value == 0.0


def test_group_equivalent_noop_when_nothing_equivalent(universe, expression):
    # Cancel-single-annotation: every annotation has a unique signature.
    valuations = ExplicitValuations(
        [cancel([name]) for name in ("U1", "U2", "U3", "U4")]
    )
    constraint = DomainConstraints({"user": SharedAttribute(("gender", "age"))})
    grouped, step, merges = group_equivalent(
        expression, universe, valuations, constraint
    )
    assert merges == 0
    assert step == {}
    assert grouped is expression
