"""Fast scorer vs reference on randomly *guarded* expressions.

The MovieLens/Wikipedia datasets carry no comparison tokens, so the
guard handling of the batch scorer (all four satisfiability regimes)
needs its own randomized cross-check against the reference path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    DomainConstraints,
    EuclideanDistance,
    MappingState,
    SharedAttribute,
    enumerate_candidates,
    virtual_summary,
)
from repro.core.fast_distance import FastStepScorer
from repro.core.summarize import _OverlayUniverse
from repro.provenance import (
    MAX,
    SUM,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    Guard,
    TensorSum,
    Term,
)

_NAMES = [f"u{i}" for i in range(5)] + ["s0", "s1"]


@st.composite
def guarded_instances(draw):
    universe = AnnotationUniverse()
    for name in _NAMES:
        domain = "stats" if name.startswith("s") else "user"
        universe.register(Annotation(name, domain, {"g": "x"}))
    n_terms = draw(st.integers(min_value=2, max_value=8))
    terms = []
    for _ in range(n_terms):
        monomial = tuple(
            sorted(
                draw(
                    st.lists(
                        st.sampled_from(_NAMES[:5]), min_size=1, max_size=2,
                        unique=True,
                    )
                )
            )
        )
        guards = ()
        if draw(st.booleans()):
            guards = (
                Guard(
                    tuple(
                        sorted(
                            draw(
                                st.lists(
                                    st.sampled_from(_NAMES),
                                    min_size=1,
                                    max_size=2,
                                    unique=True,
                                )
                            )
                        )
                    ),
                    float(draw(st.integers(min_value=0, max_value=5))),
                    draw(st.sampled_from([">", ">=", "<", "<=", "==", "!="])),
                    float(draw(st.integers(min_value=0, max_value=5))),
                ),
            )
        terms.append(
            Term(
                monomial,
                float(draw(st.integers(min_value=0, max_value=5))),
                group=draw(st.sampled_from(["m1", "m2"])),
                guards=guards,
            )
        )
    monoid = draw(st.sampled_from([MAX, SUM]))
    return universe, TensorSum(terms, monoid)


@settings(max_examples=40, deadline=None)
@given(instance=guarded_instances())
def test_fast_equals_reference_with_guards(instance):
    universe, expression = instance
    valuations = CancelSingleAnnotation(universe)
    val_func = EuclideanDistance(expression.monoid)
    combiners = DomainCombiners()
    constraint = DomainConstraints(
        {"user": SharedAttribute(("g",)), "stats": SharedAttribute(("g",))}
    )
    if not FastStepScorer.applicable(
        expression, val_func, combiners, valuations, universe, 512
    ):
        return
    computer = DistanceComputer(expression, valuations, val_func, combiners, universe)
    mapping = MappingState(sorted(expression.annotation_names()))
    scorer = FastStepScorer(computer, expression, mapping, universe)
    for candidate in enumerate_candidates(expression, universe, constraint):
        fast_size, fast_distance = scorer.score(candidate.parts)
        parts = [universe[name] for name in candidate.parts]
        virtual = virtual_summary(parts, candidate.proposal)
        overlay = _OverlayUniverse(universe, {virtual.name: virtual})
        step = {name: virtual.name for name in candidate.parts}
        reference_expression = expression.apply_mapping(step)
        reference = computer.distance(
            reference_expression, mapping.compose(step), universe=overlay
        )
        assert fast_size == reference_expression.size(), candidate
        assert fast_distance.value == pytest.approx(
            reference.value, abs=1e-12
        ), candidate
