"""CandidateScore (Definition 3.2.4) under both rank readings."""

import pytest

from repro.core import (
    Candidate,
    DistanceEstimate,
    MergeProposal,
    ScoredCandidate,
    score_candidates,
)


def entry(parts, size, distance, taxonomy_cost=0.0):
    return ScoredCandidate(
        candidate=Candidate(
            tuple(parts), MergeProposal("label", taxonomy_cost=taxonomy_cost)
        ),
        expression=None,
        step_mapping={},
        size=size,
        distance=DistanceEstimate(distance, distance, 4, True),
    )


class TestNormalized:
    def test_weighted_combination(self):
        measured = [entry(["a", "b"], 50, 0.2), entry(["c", "d"], 80, 0.0)]
        scored = score_candidates(measured, 1.0, 0.0, original_size=100)
        assert scored[0].candidate.parts == ("c", "d")
        assert scored[0].score == pytest.approx(0.0)
        assert scored[1].score == pytest.approx(0.2)

    def test_size_weight(self):
        measured = [entry(["a", "b"], 50, 0.2), entry(["c", "d"], 80, 0.0)]
        scored = score_candidates(measured, 0.0, 1.0, original_size=100)
        assert scored[0].candidate.parts == ("a", "b")
        assert scored[0].r_size == pytest.approx(0.5)

    def test_mixed_weights(self):
        measured = [entry(["a", "b"], 50, 0.2), entry(["c", "d"], 80, 0.0)]
        scored = score_candidates(measured, 0.5, 0.5, original_size=100)
        assert scored[0].score == pytest.approx(0.5 * 0.2 + 0.5 * 0.5)


class TestOrdinal:
    def test_fractional_ranks(self):
        measured = [
            entry(["a", "b"], 50, 0.3),
            entry(["c", "d"], 70, 0.1),
            entry(["e", "f"], 90, 0.2),
        ]
        scored = score_candidates(
            measured, 1.0, 0.0, original_size=100, strategy="ordinal"
        )
        assert scored[0].candidate.parts == ("c", "d")
        assert scored[0].r_dist == 0.0
        assert scored[-1].r_dist == 1.0

    def test_ties_share_rank(self):
        measured = [
            entry(["a", "b"], 50, 0.1),
            entry(["c", "d"], 70, 0.1),
            entry(["e", "f"], 90, 0.5),
        ]
        scored = score_candidates(
            measured, 1.0, 0.0, original_size=100, strategy="ordinal"
        )
        tied = [s for s in scored if s.distance.normalized == 0.1]
        assert tied[0].r_dist == tied[1].r_dist == 0.0


class TestTieBreaking:
    def test_taxonomy_cost_breaks_ties(self):
        measured = [
            entry(["x", "y"], 50, 0.1, taxonomy_cost=0.8),
            entry(["a", "b"], 50, 0.1, taxonomy_cost=0.2),
        ]
        scored = score_candidates(measured, 1.0, 0.0, original_size=100)
        assert scored[0].candidate.parts == ("a", "b")

    def test_lexicographic_fallback(self):
        measured = [entry(["z", "w"], 50, 0.1), entry(["a", "b"], 50, 0.1)]
        scored = score_candidates(measured, 1.0, 0.0, original_size=100)
        assert scored[0].candidate.parts == ("a", "b")


def test_validation_and_empty():
    assert score_candidates([], 1.0, 0.0, 100) == []
    with pytest.raises(ValueError, match="unknown scoring strategy"):
        score_candidates([entry(["a", "b"], 1, 0.0)], 1.0, 0.0, 100, strategy="x")
