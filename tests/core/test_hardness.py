"""Proposition 4.1.1 run constructively: counting DNF models via DIST-COMP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    dnf_as_provenance,
    dnf_model_count_brute_force,
    dnf_model_count_via_distance,
)


class TestEncoding:
    def test_formula_semantics(self):
        expression, variables = dnf_as_provenance([["a", "b"], ["c"]])
        assert variables == ["a", "b", "c"]
        # satisfied when (a ∧ b) or c
        assert expression.evaluate(frozenset())[None].finalized_value() == 1.0
        assert expression.evaluate(frozenset({"c", "a"}))[None].finalized_value() == 0.0
        assert expression.evaluate(frozenset({"c"}))[None].finalized_value() == 1.0


class TestReduction:
    @pytest.mark.parametrize(
        "clauses,expected",
        [
            ([["a"]], 1),                 # a: 1 model of 2
            ([["a"], ["b"]], 3),          # a ∨ b: 3 of 4
            ([["a", "b"]], 1),            # a ∧ b: 1 of 4
            ([["a", "b"], ["c"]], 5),     # (a∧b) ∨ c: 5 of 8
            ([["a"], ["a", "b"]], 2),     # absorbed clause
        ],
    )
    def test_known_counts(self, clauses, expected):
        assert dnf_model_count_via_distance(clauses) == expected
        assert dnf_model_count_brute_force(clauses) == expected

    def test_degenerate_formulas(self):
        assert dnf_model_count_via_distance([]) == 0
        assert dnf_model_count_via_distance([[]]) == 1  # constant true, no vars
        assert dnf_model_count_via_distance([["a"], []]) == 2

    def test_variable_limit(self):
        clauses = [[f"x{i}"] for i in range(20)]
        with pytest.raises(ValueError, match="2\\^20"):
            dnf_model_count_via_distance(clauses, max_variables=16)

    @settings(max_examples=25, deadline=None)
    @given(
        clauses=st.lists(
            st.lists(
                st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3,
                unique=True,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_property_matches_brute_force(self, clauses):
        """The distance-based count equals direct model counting -- the
        reduction of Proposition 4.1.1 is exact."""
        assert dnf_model_count_via_distance(clauses) == dnf_model_count_brute_force(
            clauses
        )
