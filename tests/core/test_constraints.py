"""Semantic merge constraints (§3.2)."""

import pytest

from repro.core import (
    AllowAll,
    AnyOf,
    DomainConstraints,
    SharedAttribute,
    TaxonomyAncestor,
)
from repro.provenance import Annotation
from repro.taxonomy import wordnet_person_fragment


def user(name, **attributes):
    return Annotation(name, "user", attributes)


def page(name, concept):
    return Annotation(name, "page", {"concept": concept}, concept=concept)


class TestSharedAttribute:
    def test_requires_a_shared_value(self):
        constraint = SharedAttribute(("gender", "age"))
        assert constraint.propose(user("a", gender="F"), user("b", gender="F"))
        assert (
            constraint.propose(user("a", gender="F"), user("b", gender="M")) is None
        )

    def test_label_uses_configured_priority(self):
        constraint = SharedAttribute(("age", "gender"))
        proposal = constraint.propose(
            user("a", gender="F", age="25-34"), user("b", gender="F", age="25-34")
        )
        assert proposal.label == "age=25-34"

    def test_unlisted_attributes_ignored(self):
        constraint = SharedAttribute(("gender",))
        assert (
            constraint.propose(user("a", zip="10001"), user("b", zip="10001"))
            is None
        )

    def test_any_attribute_when_unrestricted(self):
        proposal = SharedAttribute().propose(
            user("a", zip="10001"), user("b", zip="10001")
        )
        assert proposal.label == "zip=10001"

    def test_describe(self):
        assert "gender" in SharedAttribute(("gender",)).describe()
        assert SharedAttribute().describe() == "share any attribute"


class TestTaxonomyAncestor:
    def setup_method(self):
        self.taxonomy = wordnet_person_fragment()
        self.constraint = TaxonomyAncestor(self.taxonomy)

    def test_lca_names_the_summary(self):
        proposal = self.constraint.propose(
            page("Adele", "wordnet_singer"), page("Lori", "wordnet_guitarist")
        )
        assert proposal.label == "wordnet_musician"
        assert proposal.concept == "wordnet_musician"
        assert proposal.taxonomy_cost > 0

    def test_identical_concepts_cost_zero(self):
        proposal = self.constraint.propose(
            page("Adele", "wordnet_singer"), page("Celine", "wordnet_singer")
        )
        assert proposal.concept == "wordnet_singer"
        assert proposal.taxonomy_cost == 0.0

    def test_distance_bound(self):
        bounded = TaxonomyAncestor(self.taxonomy, max_distance=0.1)
        assert (
            bounded.propose(
                page("Adele", "wordnet_singer"), page("Emmy", "wordnet_physicist")
            )
            is None
        )

    def test_missing_concepts_rejected(self):
        assert self.constraint.propose(user("a"), page("Adele", "wordnet_singer")) is None
        unknown = page("X", "wordnet_dragon")
        assert self.constraint.propose(unknown, unknown) is None

    def test_describe(self):
        assert "taxonomy ancestor" in self.constraint.describe()


class TestCombinators:
    def test_any_of_first_match_wins(self):
        constraint = AnyOf(
            [SharedAttribute(("gender",)), SharedAttribute(("zip",))]
        )
        proposal = constraint.propose(
            user("a", gender="F", zip="1"), user("b", gender="F", zip="1")
        )
        assert proposal.label == "gender=F"
        fallback = constraint.propose(
            user("a", gender="F", zip="1"), user("b", gender="M", zip="1")
        )
        assert fallback.label == "zip=1"
        with pytest.raises(ValueError):
            AnyOf([])

    def test_allow_all(self):
        proposal = AllowAll().propose(user("a"), user("b"))
        assert proposal.label == "a+b"

    def test_domain_dispatch(self):
        constraint = DomainConstraints({"user": SharedAttribute(("gender",))})
        assert constraint.propose(
            user("a", gender="F"), user("b", gender="F")
        )
        # Cross-domain and unlisted-domain merges are always rejected.
        assert constraint.propose(user("a", gender="F"), page("p", "c")) is None
        assert constraint.propose(page("p", "c"), page("q", "c")) is None
        assert constraint.mergeable_domains() == ("user",)
        assert "user:" in constraint.describe()
