"""Less-travelled configuration knobs of the summarizer."""

import pytest

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    MappingState,
    SummarizationConfig,
    Summarizer,
)
from repro.datasets import MovieLensConfig, generate_movielens
from repro.provenance import MAX, CancelSubsets


def problem(seed=6):
    return generate_movielens(
        MovieLensConfig(n_users=12, n_movies=6, seed=seed)
    ).problem()


def test_candidate_cap_limits_each_step():
    result = Summarizer(
        problem(), SummarizationConfig(max_steps=3, candidate_cap=5, seed=0)
    ).run()
    assert all(record.n_candidates <= 5 for record in result.steps)


def test_candidate_cap_is_deterministic():
    def run():
        return Summarizer(
            problem(), SummarizationConfig(max_steps=3, candidate_cap=5, seed=2)
        ).run()

    first, second = run(), run()
    assert [r.merged for r in first.steps] == [r.merged for r in second.steps]


def test_ordinal_scoring_through_the_algorithm():
    result = Summarizer(
        problem(), SummarizationConfig(w_dist=0.5, max_steps=4, scoring="ordinal")
    ).run()
    assert result.n_steps >= 1
    assert result.final_size < result.original_size


def test_group_equivalent_can_be_disabled():
    config_on = SummarizationConfig(max_steps=0, group_equivalent_first=True)
    config_off = SummarizationConfig(max_steps=0, group_equivalent_first=False)
    instance = generate_movielens(MovieLensConfig(n_users=12, n_movies=6, seed=6))
    with_grouping = Summarizer(instance.problem(), config_on).run()
    instance = generate_movielens(MovieLensConfig(n_users=12, n_movies=6, seed=6))
    without = Summarizer(instance.problem(), config_off).run()
    assert without.equivalence_merges == 0
    assert with_grouping.final_size <= without.final_size


def test_cancel_subsets_class_through_distances():
    instance = generate_movielens(MovieLensConfig(n_users=6, n_movies=4, seed=3))
    valuations = CancelSubsets(instance.universe, max_cancelled=2, domains=("user",))
    computer = DistanceComputer(
        instance.expression,
        valuations,
        EuclideanDistance(MAX),
        DomainCombiners(),
        instance.universe,
    )
    mapping = MappingState(sorted(instance.expression.annotation_names()))
    estimate = computer.distance(instance.expression, mapping)
    assert estimate.value == 0.0
    assert estimate.n_valuations == len(valuations)


def test_summarizer_with_subsets_valuations():
    instance = generate_movielens(MovieLensConfig(n_users=8, n_movies=4, seed=3))
    valuations = CancelSubsets(instance.universe, max_cancelled=2, domains=("user",))
    result = Summarizer(
        instance.problem(valuations=valuations),
        SummarizationConfig(w_dist=1.0, max_steps=3, seed=0),
    ).run()
    assert result.final_distance.n_valuations == len(valuations)
