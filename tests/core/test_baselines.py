"""Random and Clustering baselines (§6.1-§6.2)."""

import pytest

from repro.core import (
    ClusterDomainSpec,
    ClusteringSummarizer,
    RandomSummarizer,
    SummarizationConfig,
)
from repro.datasets import (
    DDPConfig,
    MovieLensConfig,
    generate_ddp,
    generate_movielens,
)


@pytest.fixture
def instance():
    return generate_movielens(MovieLensConfig(n_users=10, n_movies=5, seed=2))


class TestRandom:
    def test_respects_step_budget(self, instance):
        result = RandomSummarizer(
            instance.problem(), SummarizationConfig(max_steps=3, seed=0)
        ).run()
        assert result.n_steps <= 3
        assert result.stop_reason in ("max_steps", "exhausted")

    def test_merges_respect_constraints(self, instance):
        result = RandomSummarizer(
            instance.problem(), SummarizationConfig(max_steps=5, seed=1)
        ).run()
        for record in result.steps:
            # Every merged group carries a shared attribute: the label
            # produced by SharedAttribute encodes it.
            assert "=" in record.label

    def test_deterministic_per_seed(self):
        def run(seed):
            inst = generate_movielens(MovieLensConfig(n_users=10, n_movies=5, seed=2))
            return RandomSummarizer(
                inst.problem(), SummarizationConfig(max_steps=5, seed=seed)
            ).run()

        first, second = run(9), run(9)
        assert [r.merged for r in first.steps] == [r.merged for r in second.steps]

    def test_target_size(self, instance):
        original = instance.expression.size()
        result = RandomSummarizer(
            instance.problem(),
            SummarizationConfig(target_size=int(original * 0.8), max_steps=100, seed=0),
        ).run()
        assert result.final_size <= int(original * 0.8)

    def test_target_dist_bound_respected(self, instance):
        result = RandomSummarizer(
            instance.problem(),
            SummarizationConfig(target_dist=0.02, max_steps=100, seed=0),
        ).run()
        assert result.final_distance.normalized < 0.02 or result.n_steps == 0


class TestClustering:
    def test_replays_dendrogram_merges(self, instance):
        result = ClusteringSummarizer(
            instance.problem(),
            SummarizationConfig(max_steps=4),
            [ClusterDomainSpec("user")],
        ).run()
        assert 1 <= result.n_steps <= 4
        assert result.final_size <= result.original_size

    def test_all_linkages_run(self, instance):
        from repro.clustering import LINKAGES

        for linkage in LINKAGES:
            inst = generate_movielens(MovieLensConfig(n_users=8, n_movies=5, seed=2))
            result = ClusteringSummarizer(
                inst.problem(),
                SummarizationConfig(max_steps=3),
                [ClusterDomainSpec("user")],
                linkage=linkage,
            ).run()
            assert result.n_steps >= 0

    def test_merges_respect_constraints(self, instance):
        result = ClusteringSummarizer(
            instance.problem(),
            SummarizationConfig(max_steps=6),
            [ClusterDomainSpec("user")],
        ).run()
        universe = result.universe
        for name, members in result.summary_groups().items():
            annotations = [universe[member] for member in members]
            shared = dict(annotations[0].attributes)
            for annotation in annotations[1:]:
                shared = {
                    key: value
                    for key, value in shared.items()
                    if annotation.attributes.get(key) == value
                }
            assert shared, f"group {name} shares no attribute"

    def test_ddp_rejected(self):
        instance = generate_ddp(DDPConfig(seed=0))
        with pytest.raises(TypeError, match="Clustering baseline is undefined"):
            ClusteringSummarizer(
                instance.problem(),
                SummarizationConfig(),
                [ClusterDomainSpec("cost")],
            )

    def test_requires_domain_specs(self, instance):
        with pytest.raises(ValueError, match="at least one ClusterDomainSpec"):
            ClusteringSummarizer(instance.problem(), SummarizationConfig(), [])
