"""φ combiners and valuation lifting."""

import pytest

from repro.core import AND, MAXC, MINC, OR, DomainCombiners, MappingState
from repro.provenance import Annotation, AnnotationUniverse, Valuation, cancel


class TestLiftPrimitives:
    def test_or(self):
        assert OR.lift([0.0, 1.0]) == 1.0
        assert OR.lift([0.0, 0.0]) == 0.0
        assert OR.lift([]) == 0.0

    def test_and(self):
        assert AND.lift([1.0, 1.0]) == 1.0
        assert AND.lift([1.0, 0.0]) == 0.0
        assert AND.lift([]) == 1.0

    def test_max_min(self):
        assert MAXC.lift([0.0, 0.5, 1.0]) == 1.0
        assert MINC.lift([0.5, 1.0]) == 0.5
        assert MAXC.lift([]) == 1.0


@pytest.fixture
def setup():
    universe = AnnotationUniverse()
    for name in ("a", "b", "c"):
        universe.register(Annotation(name, "user", {"k": "v"}))
    universe.register(Annotation("c1", "cost", {"cost": 3.0}))
    universe.register(Annotation("c2", "cost", {"cost": 5.0}))
    summary = universe.new_summary([universe["a"], universe["b"]], label="ab")
    mapping = MappingState(["a", "b", "c", "c1", "c2"]).compose(
        {"a": summary.name, "b": summary.name}
    )
    return universe, mapping, summary


class TestLiftedFalseSet:
    def test_or_needs_all_members_cancelled(self, setup):
        universe, mapping, summary = setup
        combiners = DomainCombiners()
        partial = combiners.lifted_false_set(cancel(["a"]), mapping, universe)
        assert partial == frozenset()
        full = combiners.lifted_false_set(cancel(["a", "b"]), mapping, universe)
        assert full == frozenset({summary.name})

    def test_base_annotations_pass_through(self, setup):
        universe, mapping, _ = setup
        combiners = DomainCombiners()
        assert combiners.lifted_false_set(
            cancel(["c"]), mapping, universe
        ) == frozenset({"c"})

    def test_unknown_bases_ignored(self, setup):
        universe, mapping, _ = setup
        combiners = DomainCombiners()
        assert combiners.lifted_false_set(
            cancel(["ghost"]), mapping, universe
        ) == frozenset()


class TestLiftValuation:
    def test_cost_domain_uses_max(self, setup):
        universe, mapping, _ = setup
        combiners = DomainCombiners(per_domain={"cost": MAXC})
        summary = universe.new_summary(
            [universe["c1"], universe["c2"]], label="cost"
        )
        mapping = mapping.compose({"c1": summary.name, "c2": summary.name})
        lifted = combiners.lift_valuation(
            Valuation({"c1": 0.0}), mapping, universe
        )
        # MAX(0, 1) = 1 = default: no deviation recorded.
        assert lifted.value(summary.name) == 1.0
        lifted = combiners.lift_valuation(
            Valuation({"c1": 0.0, "c2": 0.0}), mapping, universe
        )
        assert lifted.value(summary.name) == 0.0

    def test_weight_preserved(self, setup):
        universe, mapping, _ = setup
        lifted = DomainCombiners().lift_valuation(
            cancel(["a", "b"], weight=2.5), mapping, universe
        )
        assert lifted.weight == 2.5


def test_describe():
    combiners = DomainCombiners(per_domain={"cost": MAXC})
    assert "cost: MAX" in combiners.describe()
    assert "Logical OR" in combiners.describe()
    assert DomainCombiners().describe() == "Logical OR"
