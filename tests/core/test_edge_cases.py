"""Edge cases and failure injection across the core pipeline."""

import math

import pytest

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    DomainConstraints,
    EuclideanDistance,
    MappingState,
    SharedAttribute,
    SummarizationConfig,
    SummarizationProblem,
    Summarizer,
    enumerate_candidates,
)
from repro.provenance import (
    MAX,
    SUM,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    ExplicitValuations,
    TensorSum,
    Term,
    cancel,
)


def single_user_problem():
    universe = AnnotationUniverse()
    universe.register(Annotation("U1", "user", {"g": "x"}))
    expression = TensorSum([Term(("U1",), 3.0, group="m")], MAX)
    return SummarizationProblem(
        expression=expression,
        universe=universe,
        valuations=CancelSingleAnnotation(universe, domains=("user",)),
        val_func=EuclideanDistance(MAX),
        combiners=DomainCombiners(),
        constraint=DomainConstraints({"user": SharedAttribute(("g",))}),
    )


class TestDegenerateInputs:
    def test_single_annotation_expression(self):
        """Nothing to merge: the algorithm stops immediately."""
        result = Summarizer(single_user_problem(), SummarizationConfig()).run()
        assert result.n_steps == 0
        assert result.stop_reason in ("exhausted", "target_size")
        assert result.final_distance.value == 0.0

    def test_empty_expression(self):
        universe = AnnotationUniverse()
        universe.register(Annotation("U1", "user", {"g": "x"}))
        expression = TensorSum([], MAX)
        problem = SummarizationProblem(
            expression=expression,
            universe=universe,
            valuations=CancelSingleAnnotation(universe),
            val_func=EuclideanDistance(MAX),
            combiners=DomainCombiners(),
            constraint=DomainConstraints({}),
        )
        result = Summarizer(problem, SummarizationConfig()).run()
        assert result.final_size == 0
        assert result.stop_reason == "target_size"

    def test_all_zero_values_normalization(self):
        """max_error = 0: normalized distances degrade gracefully to 0."""
        universe = AnnotationUniverse()
        for name in ("a", "b"):
            universe.register(Annotation(name, "user", {"g": "x"}))
        expression = TensorSum(
            [Term(("a",), 0.0, group="m"), Term(("b",), 0.0, group="m")], SUM
        )
        computer = DistanceComputer(
            expression,
            CancelSingleAnnotation(universe, domains=("user",)),
            EuclideanDistance(SUM),
            DomainCombiners(),
            universe,
        )
        mapping = MappingState(["a", "b"])
        estimate = computer.distance(expression, mapping)
        assert estimate.normalized == 0.0

    def test_no_constraints_means_no_candidates(self):
        problem = single_user_problem()
        candidates = enumerate_candidates(
            problem.expression, problem.universe, DomainConstraints({})
        )
        assert candidates == []


class TestConfigBoundaries:
    def test_target_size_already_met(self):
        problem = single_user_problem()
        result = Summarizer(
            problem, SummarizationConfig(target_size=100)
        ).run()
        assert result.stop_reason == "target_size"
        assert result.n_steps == 0

    def test_target_dist_zero_like(self):
        """A microscopic distance budget still returns a valid result
        whose distance respects the bound."""
        universe = AnnotationUniverse()
        for index in range(4):
            universe.register(Annotation(f"u{index}", "user", {"g": "x"}))
        expression = TensorSum(
            [Term((f"u{index}",), float(index + 1), group="m") for index in range(4)],
            MAX,
        )
        problem = SummarizationProblem(
            expression=expression,
            universe=universe,
            valuations=CancelSingleAnnotation(universe, domains=("user",)),
            val_func=EuclideanDistance(MAX),
            combiners=DomainCombiners(),
            constraint=DomainConstraints({"user": SharedAttribute(("g",))}),
        )
        result = Summarizer(
            problem,
            SummarizationConfig(w_dist=0.0, target_dist=1e-9, max_steps=10),
        ).run()
        assert result.final_distance.normalized < 1e-9

    def test_sampling_budget_of_one(self):
        problem = single_user_problem()
        result = Summarizer(
            problem,
            SummarizationConfig(max_enumerate=0, distance_samples=1),
        ).run()
        assert result.final_distance.n_valuations == 1


class TestWeightEdgeCases:
    def test_zero_total_weight_valuations(self):
        universe = AnnotationUniverse()
        for name in ("a", "b"):
            universe.register(Annotation(name, "user", {"g": "x"}))
        expression = TensorSum(
            [Term(("a",), 2.0, group="m"), Term(("b",), 3.0, group="m")], MAX
        )
        valuations = ExplicitValuations(
            [cancel(["a"], weight=0.0), cancel(["b"], weight=0.0)]
        )
        computer = DistanceComputer(
            expression, valuations, EuclideanDistance(MAX), DomainCombiners(), universe
        )
        estimate = computer.exact(expression, MappingState(["a", "b"]))
        assert estimate.value == 0.0
