"""Step-by-step replay of a summarization run (the UI arrows)."""

import pytest

from repro.core import SummarizationConfig, Summarizer
from repro.datasets import MovieLensConfig, generate_movielens


@pytest.fixture
def result():
    instance = generate_movielens(MovieLensConfig(n_users=10, n_movies=5, seed=4))
    return Summarizer(
        instance.problem(), SummarizationConfig(w_dist=0.5, max_steps=4, seed=0)
    ).run()


def test_step_zero_is_post_equivalence(result):
    step0 = result.at_step(0)
    if result.equivalence_mapping:
        assert step0.size() < result.original_size
    else:
        assert str(step0) == str(result.original_expression)


def test_final_step_equals_summary(result):
    final = result.at_step(result.n_steps)
    assert str(final) == str(result.summary_expression)
    assert final.size() == result.final_size


def test_intermediate_sizes_match_records(result):
    for record in result.steps:
        assert result.at_step(record.step).size() == record.size_after


def test_bounds(result):
    with pytest.raises(IndexError):
        result.at_step(-1)
    with pytest.raises(IndexError):
        result.at_step(result.n_steps + 1)


def test_step_mapping_property(result):
    if result.steps:
        record = result.steps[0]
        assert set(record.step_mapping) == set(record.merged)
        assert set(record.step_mapping.values()) == {record.new_annotation}
