"""ASCII chart rendering."""

import pytest

from repro.experiments.ascii_chart import chart_from_rows, render_chart


def test_marks_and_labels():
    chart = render_chart(
        {
            "prov": [(0.0, 0.02), (1.0, 0.0)],
            "random": [(0.0, 0.03), (1.0, 0.03)],
        },
        width=20,
        height=6,
        x_label="wDist",
    )
    assert "p" in chart
    assert "r" in chart
    assert "0.03" in chart  # y-axis top label
    assert "(wDist)" in chart
    assert "p=prov" in chart and "r=random" in chart


def test_collisions_marked_with_star():
    chart = render_chart(
        {"aaa": [(0.0, 1.0)], "bbb": [(0.0, 1.0)]}, width=10, height=4
    )
    assert "*" in chart


def test_flat_series_visible():
    chart = render_chart({"flat": [(0.0, 5.0), (1.0, 5.0)]}, width=10, height=4)
    grid_lines = chart.splitlines()[:-2]  # drop axis and footer
    assert sum(line.count("f") for line in grid_lines) == 2


def test_empty_rejected():
    with pytest.raises(ValueError, match="nothing to plot"):
        render_chart({})


def test_chart_from_rows():
    rows = [
        {"algorithm": "prov", "w_dist": 0.0, "avg_distance": 0.02},
        {"algorithm": "prov", "w_dist": 1.0, "avg_distance": 0.0},
        {"algorithm": "random", "w_dist": 0.5, "avg_distance": 0.05},
    ]
    chart = chart_from_rows(
        rows, x="w_dist", y="avg_distance", split_by="algorithm", width=16, height=5
    )
    assert "p=prov" in chart
    assert "r=random" in chart
