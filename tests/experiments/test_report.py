"""Reporting helpers and shape checks."""

import pytest

from repro.experiments import (
    all_passed,
    check_shapes,
    format_rows,
    mean_of,
    series,
    trend,
    weakly_monotone,
)

ROWS = [
    {"algorithm": "a", "x": 0.0, "y": 1.0},
    {"algorithm": "a", "x": 1.0, "y": 0.5},
    {"algorithm": "b", "x": 0.0, "y": 2.0},
    {"algorithm": "b", "x": 1.0, "y": 2.5},
]


def test_format_rows_alignment():
    text = format_rows(ROWS)
    lines = text.splitlines()
    assert lines[0].startswith("algorithm")
    assert len(lines) == 2 + len(ROWS)
    assert format_rows([]) == "(no rows)"
    assert "1.0000" in text


def test_series_filters_and_sorts():
    extracted = series(ROWS, "x", "y", where={"algorithm": "a"})
    assert extracted == [(0.0, 1.0), (1.0, 0.5)]
    assert series(ROWS, "x", "y", where={"algorithm": "missing"}) == []


def test_mean_of():
    assert mean_of(ROWS, "y", where={"algorithm": "b"}) == pytest.approx(2.25)
    with pytest.raises(ValueError, match="no rows match"):
        mean_of(ROWS, "y", where={"algorithm": "zzz"})


def test_weakly_monotone():
    assert weakly_monotone([1.0, 2.0, 3.0], "increasing")
    assert weakly_monotone([3.0, 2.0, 2.0], "decreasing")
    assert not weakly_monotone([1.0, 0.5, 2.0], "increasing")
    # Tolerance forgives small wiggles.
    assert weakly_monotone([1.0, 0.95, 2.0], "increasing", tolerance=0.1)
    with pytest.raises(ValueError):
        weakly_monotone([1.0], "sideways")


def test_trend():
    assert trend([1.0, 5.0, 3.0]) == 2.0
    assert trend([2.0]) == 0.0


def test_check_shapes_rendering():
    checks = [("distance decreases", True), ("size grows", False)]
    text = check_shapes(checks)
    assert "[OK  ] distance decreases" in text
    assert "[FAIL] size grows" in text
    assert not all_passed(checks)
    assert all_passed([("fine", True)])
