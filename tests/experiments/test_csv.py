"""CSV export of experiment rows."""

import csv

import pytest

from repro.experiments import write_csv

ROWS = [
    {"algorithm": "a", "w_dist": 0.5, "avg_distance": 0.01},
    {"algorithm": "b", "w_dist": 0.5, "avg_distance": 0.02, "extra": "x"},
]


def test_round_trip(tmp_path):
    path = tmp_path / "rows.csv"
    write_csv(ROWS, path)
    with open(path, newline="") as handle:
        restored = list(csv.DictReader(handle))
    assert restored[0]["algorithm"] == "a"
    assert float(restored[1]["avg_distance"]) == 0.02


def test_column_selection(tmp_path):
    path = tmp_path / "rows.csv"
    write_csv(ROWS, path, columns=("algorithm",))
    with open(path, newline="") as handle:
        restored = list(csv.DictReader(handle))
    assert list(restored[0]) == ["algorithm"]


def test_empty_rejected(tmp_path):
    with pytest.raises(ValueError, match="empty"):
        write_csv([], tmp_path / "rows.csv")
