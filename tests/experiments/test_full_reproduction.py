"""The one-call Chapter 6 reproduction entry point."""

import pytest

from repro.experiments import reproduce_all


def test_quick_profile_single_figure(tmp_path):
    messages = []
    results = reproduce_all(
        tmp_path, profile="quick", figures=["fig_6_8a"], log=messages.append
    )
    assert set(results) == {"fig_6_8a"}
    assert (tmp_path / "fig_6_8a.txt").exists()
    assert (tmp_path / "fig_6_8a.csv").exists()
    summary = (tmp_path / "SUMMARY.md").read_text()
    assert "fig_6_8a" in summary
    assert messages and "fig_6_8a" in messages[0]


def test_all_figures_planned(tmp_path):
    """Every Chapter 6 figure id appears in the plan (run none)."""
    results = reproduce_all(tmp_path, profile="quick", figures=[])
    assert results == {}
    from repro.experiments.full_reproduction import _plan

    ids = [figure for figure, *_ in _plan((0.5,), (1,))]
    expected = {
        "fig_6_1a", "fig_6_1b", "fig_6_2a", "fig_6_2b", "fig_6_3",
        "fig_6_4", "fig_6_5", "fig_6_6a", "fig_6_6b", "fig_6_7a",
        "fig_6_7b", "fig_6_8a", "fig_6_8b", "fig_6_9a", "fig_6_9b",
    }
    assert set(ids) == expected


def test_invalid_profile(tmp_path):
    with pytest.raises(ValueError, match="'quick' or 'full'"):
        reproduce_all(tmp_path, profile="gigantic")
