"""Experiment runner: row shapes and algorithm dispatch."""

import pytest

from repro.datasets import MovieLensConfig, generate_movielens
from repro.experiments import (
    DatasetSpec,
    ddp_spec,
    execute,
    movielens_spec,
    steps_experiment,
    target_dist_experiment,
    target_size_experiment,
    timing_experiment,
    usage_ratio,
    usage_time_experiment,
    wdist_experiment,
)
from repro.core import SummarizationConfig


@pytest.fixture
def tiny_spec():
    return DatasetSpec(
        name="tiny-movielens",
        factory=lambda seed: generate_movielens(
            MovieLensConfig(n_users=8, n_movies=5, seed=seed)
        ),
    )


def test_execute_dispatch(tiny_spec):
    config = SummarizationConfig(max_steps=2, seed=0)
    for algorithm in ("prov-approx", "clustering", "random"):
        result = execute(tiny_spec, algorithm, config, seed=1)
        assert result.final_size <= result.original_size
    with pytest.raises(ValueError, match="unknown algorithm"):
        execute(tiny_spec, "greedy", config, seed=1)


def test_clustering_rejected_for_ddp():
    spec = ddp_spec()
    with pytest.raises(ValueError, match="no clustering feature specs"):
        execute(spec, "clustering", SummarizationConfig(max_steps=1), seed=0)


def test_wdist_rows(tiny_spec):
    rows = wdist_experiment(
        tiny_spec, seeds=(1,), wdist_grid=(0.0, 1.0), max_steps=3
    )
    algorithms = {row["algorithm"] for row in rows}
    assert algorithms == {"prov-approx", "clustering", "random"}
    for row in rows:
        assert 0.0 <= row["avg_distance"] <= 1.0
        assert row["avg_size"] > 0
        assert row["runs"] == 1
    # Baselines replicate flat across the grid.
    clustering_rows = [r for r in rows if r["algorithm"] == "clustering"]
    assert len(clustering_rows) == 2
    assert clustering_rows[0]["avg_distance"] == clustering_rows[1]["avg_distance"]


def test_wdist_excludes_clustering_without_specs():
    rows = wdist_experiment(
        ddp_spec(), seeds=(1,), wdist_grid=(0.5,), max_steps=2
    )
    assert {row["algorithm"] for row in rows} == {"prov-approx", "random"}


def test_target_size_rows(tiny_spec):
    rows = target_size_experiment(
        tiny_spec, seeds=(1,), size_fractions=(0.7, 0.9),
        algorithms=("prov-approx",),
    )
    assert len(rows) == 2
    for row in rows:
        assert row["target_size_fraction"] in (0.7, 0.9)


def test_target_dist_rows(tiny_spec):
    rows = target_dist_experiment(
        tiny_spec, seeds=(1,), target_dists=(0.05,), algorithms=("prov-approx",)
    )
    (row,) = rows
    assert row["target_dist"] == 0.05
    assert row["avg_distance"] < 0.05 or row["avg_steps"] == 0


def test_steps_rows(tiny_spec):
    rows = steps_experiment(
        tiny_spec, seeds=(1,), wdist_grid=(0.5,), steps_grid=(2, 4)
    )
    assert {row["max_steps"] for row in rows} == {2, 4}


def test_usage_ratio(tiny_spec):
    result = execute(
        tiny_spec, "prov-approx", SummarizationConfig(max_steps=4, seed=1), seed=1
    )
    instance = tiny_spec.factory(1)
    ratio = usage_ratio(result, instance, n_valuations=4, repeats=3, seed=0)
    assert ratio > 0


def test_usage_time_rows(tiny_spec):
    rows = usage_time_experiment(
        tiny_spec,
        seeds=(1,),
        wdist_grid=(0.0, 1.0),
        steps_grid=(2,),
        n_valuations=3,
        algorithms=("prov-approx", "random"),
    )
    prov = [r for r in rows if r["algorithm"] == "prov-approx"]
    rand = [r for r in rows if r["algorithm"] == "random"]
    assert len(prov) == 2  # one per wDist
    assert len(rand) == 2  # replicated flat
    assert all(row["avg_usage_ratio"] > 0 for row in rows)


def test_timing_rows(tiny_spec):
    rows = timing_experiment(tiny_spec, seeds=(1,), max_steps=4)
    assert rows
    for row in rows:
        assert row["size_before"] >= row["size_after"]
        assert row["candidate_ms"] >= 0
        assert row["n_candidates"] >= 1


def test_spec_names():
    assert movielens_spec().name == "movielens"
    instance = movielens_spec().factory(3)
    assert instance.expression.size() > 0
