"""The perf-regression gate: fingerprint regimes, tolerances, floors."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _serving(quick, p99_by_level, rps=10.0, errors=0, lost=0):
    return {
        "benchmark": "serving",
        "quick": quick,
        "instance": {
            "dataset": "movielens",
            "n_users": 80,
            "n_movies": 300,
            "requests_per_worker": 25,
            "levels": sorted(p99_by_level),
            "cores": 8 if quick else 1,  # cores never affect the fingerprint
        },
        "levels": [
            {
                "concurrency": concurrency,
                "requests": 50,
                "completed": 50 - lost,
                "errors": errors,
                "throughput_rps": rps,
                "overall": {"p50_ms": p99 / 10, "p99_ms": p99},
            }
            for concurrency, p99 in sorted(p99_by_level.items())
        ],
    }


def _parallel(quick, speedups):
    return {
        "benchmark": "parallel_scoring",
        "quick": quick,
        "instance": {"dataset": "movielens", "n_users": 40},
        "modes": [
            {"mode": mode, "speedup_vs_seed": speedup}
            for mode, speedup in speedups.items()
        ],
    }


def _write(directory, **payloads):
    directory.mkdir(parents=True, exist_ok=True)
    for name, payload in payloads.items():
        (directory / f"{name}.json").write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baseline", tmp_path / "fresh"


def run(baseline, fresh, capsys, tolerance=None):
    argv = ["--baseline", str(baseline), "--fresh", str(fresh)]
    if tolerance is not None:
        argv += ["--tolerance", str(tolerance)]
    code = check_regression.main(argv)
    return code, capsys.readouterr().out


# -- matched fingerprints: ratio diffs -----------------------------------------


def test_identical_runs_pass(dirs, capsys):
    baseline, fresh = dirs
    payload = _serving(False, {2: 400.0, 8: 3000.0})
    _write(baseline, serving=payload)
    _write(fresh, serving=payload)
    code, out = run(baseline, fresh, capsys)
    assert code == 0
    assert "OK serving: fingerprints match" in out
    assert "no regressions detected" in out


def test_within_tolerance_drift_passes(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, serving=_serving(False, {2: 400.0}, rps=10.0))
    # p99 +20%, throughput -20%: both inside the ±25% default
    _write(fresh, serving=_serving(False, {2: 480.0}, rps=8.0))
    code, _ = run(baseline, fresh, capsys)
    assert code == 0


def test_lower_is_better_regression_fails(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, serving=_serving(False, {2: 400.0, 8: 3000.0}))
    _write(fresh, serving=_serving(False, {2: 900.0, 8: 3000.0}))  # p99 +125%
    code, out = run(baseline, fresh, capsys)
    assert code == 1
    assert "FAIL serving" in out
    assert "levels[2].overall.p99_ms (lower is better)" in out
    assert "+125%" in out


def test_higher_is_better_regression_fails(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, parallel_scoring=_parallel(False, {"seed": 1.0, "opt": 6.0}))
    _write(fresh, parallel_scoring=_parallel(False, {"seed": 1.0, "opt": 3.0}))
    code, out = run(baseline, fresh, capsys)
    assert code == 1
    assert "modes[opt].speedup_vs_seed (higher is better) 6.000 -> 3.000" in out


def test_improvements_never_fail(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, serving=_serving(False, {2: 400.0}, rps=10.0))
    _write(fresh, serving=_serving(False, {2: 100.0}, rps=40.0))
    code, _ = run(baseline, fresh, capsys)
    assert code == 0


def test_tolerance_is_configurable(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, serving=_serving(False, {2: 400.0}))
    _write(fresh, serving=_serving(False, {2: 480.0}))  # +20%
    code, _ = run(baseline, fresh, capsys, tolerance=0.1)
    assert code == 1


# -- differing fingerprints: floor invariants ----------------------------------


def test_smoke_vs_full_asserts_floors_not_ratios(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, serving=_serving(False, {2: 400.0, 8: 3000.0}))
    # a much slower smoke run is fine: only the floors matter
    _write(fresh, serving=_serving(True, {2: 4000.0, 4: 9000.0}, rps=1.0))
    code, out = run(baseline, fresh, capsys)
    assert code == 0
    assert "fingerprints differ" in out
    assert "floor invariants asserted" in out


def test_serving_floor_rejects_errors_and_lost_requests(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, serving=_serving(False, {2: 400.0, 8: 3000.0}))
    _write(fresh, serving=_serving(True, {2: 500.0, 4: 900.0}, errors=2, lost=1))
    code, out = run(baseline, fresh, capsys)
    assert code == 1
    assert "failed requests" in out
    assert "lost" in out


def test_serving_floor_requires_two_levels(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, serving=_serving(False, {2: 400.0}))
    _write(fresh, serving=_serving(True, {2: 500.0}))
    code, out = run(baseline, fresh, capsys)
    assert code == 1
    assert "fewer than two concurrency levels" in out


def test_parallel_floor_requires_a_winning_mode(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, parallel_scoring=_parallel(False, {"seed": 1.0, "opt": 6.0}))
    _write(fresh, parallel_scoring=_parallel(True, {"seed": 1.0, "opt": 0.9}))
    code, out = run(baseline, fresh, capsys)
    assert code == 1
    assert "no optimized mode beat the seed" in out


# -- plumbing ------------------------------------------------------------------


def test_missing_families_are_skipped_not_failed(dirs, capsys):
    baseline, fresh = dirs
    _write(baseline, serving=_serving(False, {2: 400.0, 8: 3000.0}))
    _write(fresh)  # empty fresh directory: CI re-ran nothing
    code, out = run(baseline, fresh, capsys)
    assert code == 0
    assert "SKIP serving: no fresh JSON" in out


def test_fingerprint_ignores_cores_but_not_workload():
    fingerprint = check_regression._fingerprint
    full = _serving(False, {2: 400.0})
    other_cores = _serving(False, {2: 400.0})
    other_cores["instance"]["cores"] = 64
    assert fingerprint(full) == fingerprint(other_cores)
    assert fingerprint(full) != fingerprint(_serving(True, {2: 400.0}))
    bigger = _serving(False, {2: 400.0})
    bigger["instance"]["n_users"] = 999
    assert fingerprint(full) != fingerprint(bigger)
