"""The README's quickstart code must stay runnable verbatim-ish."""

from repro.core import SummarizationConfig, Summarizer
from repro.datasets import MovieLensConfig, generate_movielens
from repro.provenance import cancel


def test_quickstart_block():
    instance = generate_movielens(MovieLensConfig(seed=7))
    assert "⊗" in str(instance.expression)

    result = Summarizer(
        instance.problem(),
        SummarizationConfig(w_dist=0.7, max_steps=20),
    ).run()
    assert result.final_size <= instance.expression.size()
    assert 0.0 <= result.final_distance.normalized <= 1.0

    scenario = cancel(["UID101"])
    lifted = instance.combiners.lift_valuation(
        scenario, result.mapping, result.universe
    )
    vector = result.summary_expression.evaluate(lifted.false_set())
    assert vector  # the provisioning answer exists


def test_package_version():
    import repro

    assert repro.__version__ == "1.0.0"
