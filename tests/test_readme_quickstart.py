"""The README's quickstart code must stay runnable verbatim-ish."""

from repro.core import SummarizationConfig, Summarizer
from repro.datasets import MovieLensConfig, generate_movielens
from repro.provenance import cancel


def test_quickstart_block():
    instance = generate_movielens(MovieLensConfig(seed=7))
    assert "⊗" in str(instance.expression)

    result = Summarizer(
        instance.problem(),
        SummarizationConfig(w_dist=0.7, max_steps=20),
    ).run()
    assert result.final_size <= instance.expression.size()
    assert 0.0 <= result.final_distance.normalized <= 1.0

    scenario = cancel(["UID101"])
    lifted = instance.combiners.lift_valuation(
        scenario, result.mapping, result.universe
    )
    vector = result.summary_expression.evaluate(lifted.false_set())
    assert vector  # the provisioning answer exists


def test_streaming_ingest_block():
    """README § Streaming ingest & summary repair, verbatim-ish."""
    from repro.datasets import MovieLensDeltaConfig, generate_movielens_deltas
    from repro.prox import ProxSession, SummarizationRequest

    instance = generate_movielens(MovieLensConfig(seed=7))
    session = ProxSession(instance)
    session.select_titles(session.titles())
    request = SummarizationRequest(number_of_steps=8)
    session.summarize(request)

    for delta in generate_movielens_deltas(
        instance, MovieLensDeltaConfig(n_deltas=3)
    ):
        session.ingest(delta)
        result = session.summarize(request)
        assert result.final_size <= session.selected.size()
    assert session.ingested_deltas == 3
    assert result.repaired or result.repair_seeded >= 0


def test_package_version():
    import repro

    assert repro.__version__ == "1.0.0"
