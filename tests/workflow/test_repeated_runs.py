"""Repeated workflow application over persistent state (§2.1).

"A workflow execution (or 'run') is a repeated application of modules"
operating over a global persistent database: running the same
specification again must observe -- and further update -- the state the
previous run left behind."""

from repro.workflow import Review, WorkflowEngine, build_movie_workflow


def test_second_run_accumulates_statistics():
    users = {"1": {"role": "audience"}}
    reviews = {"imdb": [Review("1", "MP", 4), Review("1", "MP", 5)]}
    spec, database = build_movie_workflow(users, reviews, threshold=2)
    engine = WorkflowEngine(spec, database)

    engine.run()
    first = {str(t["user_id"]): t["num_rate"] for t in database["Stats"]}
    assert first == {"1": 2}

    engine.run()
    second = {str(t["user_id"]): t["num_rate"] for t in database["Stats"]}
    assert second == {"1": 4}


def test_guards_reflect_updated_state():
    """User 1 is inactive (1 review) on the first run; after the second
    run their statistics cross the threshold and the guard passes."""
    users = {"1": {"role": "audience"}}
    reviews = {"imdb": [Review("1", "MP", 5)]}
    spec, database = build_movie_workflow(users, reviews, threshold=1)
    engine = WorkflowEngine(spec, database)

    run1 = engine.run()
    from repro.db import combined_aggregate

    # [.. ⊗ 1 > 1] is statically false: 0 ⊗ m ≡ 0 drops the review
    # before aggregation, so MP has no provenance at all yet.
    assert len(run1["aggregator"]) == 0

    run2 = engine.run()
    vector2 = combined_aggregate(run2["aggregator"]).to_tensor_sum().full_vector()
    assert vector2["MP"].finalized_value() == 5.0  # [.. ⊗ 2 > 1] holds


def test_run_output_names():
    users = {"1": {"role": "audience"}}
    reviews = {"imdb": [Review("1", "MP", 4)]}
    spec, database = build_movie_workflow(users, reviews)
    run = WorkflowEngine(spec, database).run()
    assert "aggregator" in run.output_names()
    assert "source_imdb" in run.output_names()
