"""The Example 2.1.1 workflow end to end: provenance shape and provisioning."""

import pytest

from repro.db import combined_aggregate
from repro.provenance import SUM, Comparison
from repro.workflow import Review, run_movie_workflow


@pytest.fixture
def run_and_db():
    users = {
        "1": {"role": "audience"},
        "2": {"role": "audience"},
        "3": {"role": "critic"},
    }
    reviews = {
        "imdb": [
            Review("1", "MatchPoint", 3),
            Review("1", "MatchPoint", 4),
            Review("1", "MatchPoint", 3),
            Review("2", "MatchPoint", 5),
            Review("2", "BlueJasmine", 4),
            Review("2", "BlueJasmine", 2),
        ],
        "times": [
            Review("3", "MatchPoint", 3),
            Review("3", "BlueJasmine", 1),
            Review("3", "MatchPoint", 2),
        ],
    }
    return run_movie_workflow(users, reviews, threshold=2)


def test_example_2_2_1_shape(run_and_db):
    """Sanitized reviews carry ``U_i · [S_i · U_i ⊗ n > 2]``."""
    run, _ = run_and_db
    movies = run["aggregator"]
    by_movie = {t["movie"]: t.values["agg"] for t in movies}
    text = str(by_movie["MatchPoint"])
    assert "U_2 · [S_2 · U_2 ⊗ 3 > 2] ⊗ (5, 1)" in text


def test_stats_updated(run_and_db):
    _, database = run_and_db
    stats = {str(t["user_id"]): t["num_rate"] for t in database["Stats"]}
    assert stats == {"1": 3, "2": 3, "3": 3}


def test_threshold_guards_filter_inactive_users():
    users = {"1": {"role": "audience"}, "2": {"role": "audience"}}
    reviews = {
        "imdb": [
            Review("1", "MP", 5),  # only one review: guard 1 > 2 fails
            Review("2", "MP", 3),
            Review("2", "MP", 4),
            Review("2", "BJ", 4),
        ]
    }
    run, _ = run_and_db = run_movie_workflow(users, reviews, threshold=2)
    expression = combined_aggregate(run["aggregator"]).to_tensor_sum()
    vector = expression.full_vector()
    # User 1's 5-star review is filtered; MP's max comes from user 2.
    assert vector["MP"].finalized_value() == 4.0


def test_provisioning_cancel_stats(run_and_db):
    """Mapping S_i to false discards the user's reviews (Example 2.3.1)."""
    run, _ = run_and_db
    expression = combined_aggregate(run["aggregator"]).to_tensor_sum()
    full = expression.full_vector()
    assert full["MatchPoint"].finalized_value() == 5.0
    without_user_2 = expression.evaluate(frozenset({"S_2"}))
    assert without_user_2["MatchPoint"].finalized_value() == 4.0
    assert without_user_2["BlueJasmine"].finalized_value() == 1.0


def test_movies_table_written_back(run_and_db):
    _, database = run_and_db
    assert "Movies" in database
    assert {t["movie"] for t in database["Movies"]} == {"MatchPoint", "BlueJasmine"}


def test_sum_aggregation():
    users = {"1": {"role": "audience"}}
    reviews = {"imdb": [Review("1", "MP", 3), Review("1", "MP", 4), Review("1", "BJ", 2)]}
    run, _ = run_movie_workflow(users, reviews, threshold=2, monoid=SUM)
    expression = combined_aggregate(run["aggregator"]).to_tensor_sum()
    assert expression.full_vector()["MP"].finalized_value() == 7.0
