"""Workflow specifications: DAG structure and ordering."""

import pytest

from repro.workflow import WorkflowSpec


def noop(database, inputs):
    return None


def test_topological_order_respects_edges():
    spec = WorkflowSpec()
    for name in ("aggregator", "source", "reviewer"):
        spec.add_module(name, noop)
    spec.add_edge("source", "reviewer")
    spec.add_edge("reviewer", "aggregator")
    order = spec.topological_order()
    assert order.index("source") < order.index("reviewer") < order.index("aggregator")


def test_cycle_rejected():
    spec = WorkflowSpec()
    spec.add_module("a", noop)
    spec.add_module("b", noop)
    spec.add_edge("a", "b")
    spec.add_edge("b", "a")
    with pytest.raises(ValueError, match="cycle"):
        spec.topological_order()


def test_duplicate_module_rejected():
    spec = WorkflowSpec()
    spec.add_module("a", noop)
    with pytest.raises(ValueError, match="already exists"):
        spec.add_module("a", noop)


def test_edge_validation():
    spec = WorkflowSpec()
    spec.add_module("a", noop)
    with pytest.raises(KeyError):
        spec.add_edge("a", "missing")
    with pytest.raises(ValueError, match="self-loops"):
        spec.add_edge("a", "a")


def test_predecessors():
    spec = WorkflowSpec()
    for name in ("a", "b", "c"):
        spec.add_module(name, noop)
    spec.add_edge("a", "c")
    spec.add_edge("b", "c")
    assert set(spec.predecessors("c")) == {"a", "b"}
    assert spec.predecessors("a") == ()
