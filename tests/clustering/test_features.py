"""Feature vectors derived from provenance expressions."""

from repro.clustering import feature_vectors
from repro.provenance import MAX, SUM, Annotation, AnnotationUniverse, TensorSum, Term


def build_universe():
    universe = AnnotationUniverse()
    universe.register(Annotation("U1", "user", {"gender": "F"}))
    universe.register(Annotation("U2", "user", {"gender": "M"}))
    universe.register(Annotation("P1", "page", {"concept": "singer"}))
    universe.register(Annotation("P2", "page", {"concept": "guitarist"}))
    return universe


def build_expression():
    return TensorSum(
        [
            Term(("P1", "U1"), 1.0, group="P1"),
            Term(("P2", "U1"), 0.0, group="P2"),
            Term(("P1", "U2"), 1.0, group="P1"),
            Term(("P1", "U2"), 1.0, group="P1", guards=()),
        ],
        SUM,
    )


def test_user_features_profile_by_group():
    universe = build_universe()
    vectors = feature_vectors(build_expression(), universe, "user")
    by_ident = {vector.ident: vector for vector in vectors}
    assert by_ident["U1"].ratings == {"P1": 1.0, "P2": 0.0}
    # U2's two P1 edits merge into one congruent term of value 2.
    assert by_ident["U2"].ratings == {"P1": 2.0}
    assert by_ident["U1"].attributes == {"gender": "F"}


def test_page_features_profile_by_user_domain():
    universe = build_universe()
    vectors = feature_vectors(
        build_expression(), universe, "page", key_domain="user"
    )
    by_ident = {vector.ident: vector for vector in vectors}
    assert by_ident["P1"].ratings == {"U1": 1.0, "U2": 2.0}
    assert by_ident["P2"].ratings == {"U1": 0.0}


def test_movielens_shape():
    universe = AnnotationUniverse()
    universe.register(Annotation("U1", "user", {"gender": "F"}))
    universe.register(Annotation("MP", "movie", {}))
    universe.register(Annotation("Y1995", "year", {}))
    expression = TensorSum([Term(("MP", "U1", "Y1995"), 4.0, group="MP")], MAX)
    (vector,) = feature_vectors(expression, universe, "user")
    assert vector.ratings == {"MP": 4.0}
    # Terms without a key in the requested domain are skipped.
    assert feature_vectors(expression, universe, "year", key_domain="missing") == []
