"""Pearson / Jaccard dissimilarity for feature vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clustering import (
    jaccard_dissimilarity,
    pearson_correlation,
    pearson_dissimilarity,
)


class TestPearson:
    def test_perfect_positive(self):
        first = {"a": 1.0, "b": 2.0, "c": 3.0}
        second = {"a": 2.0, "b": 4.0, "c": 6.0}
        assert pearson_correlation(first, second) == pytest.approx(1.0)
        assert pearson_dissimilarity(first, second) == pytest.approx(0.0)

    def test_perfect_negative(self):
        first = {"a": 1.0, "b": 2.0, "c": 3.0}
        second = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert pearson_correlation(first, second) == pytest.approx(-1.0)
        assert pearson_dissimilarity(first, second) == pytest.approx(1.0)

    def test_only_common_keys_count(self):
        first = {"a": 1.0, "b": 2.0, "x": 99.0}
        second = {"a": 2.0, "b": 4.0, "y": -5.0}
        assert pearson_correlation(first, second) == pytest.approx(1.0)

    def test_undefined_cases(self):
        assert pearson_correlation({"a": 1.0}, {"a": 2.0}) is None  # 1 common key
        assert pearson_correlation({}, {"a": 1.0}) is None
        constant = {"a": 3.0, "b": 3.0}
        assert pearson_correlation(constant, {"a": 1.0, "b": 2.0}) is None
        assert pearson_dissimilarity(constant, {"a": 1.0, "b": 2.0}) == 0.75
        assert pearson_dissimilarity({}, {}, undefined=0.5) == 0.5

    @given(
        st.dictionaries(
            st.sampled_from("abcdef"),
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
        ),
        st.dictionaries(
            st.sampled_from("abcdef"),
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
        ),
    )
    def test_property_bounds_and_symmetry(self, first, second):
        value = pearson_dissimilarity(first, second)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(pearson_dissimilarity(second, first))


class TestJaccard:
    def test_known_values(self):
        assert jaccard_dissimilarity({"a": 1}, {"a": 2}) == 0.0
        assert jaccard_dissimilarity({"a": 1}, {"b": 2}) == 1.0
        assert jaccard_dissimilarity({"a": 1, "b": 1}, {"b": 2, "c": 3}) == pytest.approx(
            2 / 3
        )
        assert jaccard_dissimilarity({}, {}) == 1.0
