"""Agglomerative clustering: linkages, constraints, dendrograms."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import LINKAGES, AgglomerativeClustering, dendrogram


def matrix_dissimilarity(matrix):
    return lambda i, j: matrix[i][j]


@pytest.fixture
def four_points():
    """Points on a line at 0, 1, 5, 7 (absolute-difference metric)."""
    points = [0.0, 1.0, 5.0, 7.0]
    return lambda i, j: abs(points[i] - points[j])


class TestSingleLinkage:
    def test_merge_order(self, four_points):
        merges = dendrogram(4, four_points, linkage="single")
        # 0-1 (distance 1), then 2-3 (2), then the two clusters (4).
        assert [m.dissimilarity for m in merges] == [1.0, 2.0, 4.0]
        assert merges[0].members == frozenset({0, 1})
        assert merges[1].members == frozenset({2, 3})
        assert merges[2].members == frozenset({0, 1, 2, 3})

    def test_single_linkage_heights_monotone(self, four_points):
        merges = dendrogram(4, four_points, linkage="single")
        heights = [m.dissimilarity for m in merges]
        assert heights == sorted(heights)


class TestCompleteLinkage:
    def test_uses_largest_distance(self, four_points):
        merges = dendrogram(4, four_points, linkage="complete")
        # Final merge joins {0,1} and {2,3} at max distance 7.
        assert merges[-1].dissimilarity == 7.0


class TestAverageLinkage:
    def test_matches_direct_average(self, four_points):
        merges = dendrogram(4, four_points, linkage="average")
        # Average of pairwise distances between {0,1} and {2,3}:
        # (5 + 7 + 4 + 6) / 4 = 5.5.
        assert merges[-1].dissimilarity == pytest.approx(5.5)


class TestWardLinkage:
    def test_prefers_balanced_tight_merges(self):
        # Two tight pairs far apart; ward must merge within pairs first.
        points = [0.0, 0.1, 10.0, 10.1]
        merges = dendrogram(
            4, lambda i, j: (points[i] - points[j]) ** 2, linkage="ward"
        )
        first_two = {merges[0].members, merges[1].members}
        assert first_two == {frozenset({0, 1}), frozenset({2, 3})}


class TestConstraints:
    def test_disallowed_pairs_never_merge(self, four_points):
        def allowed(first, second):
            # Forbid mixing {0,1} with {2,3}.
            return max(first | second) <= 1 or min(first | second) >= 2

        merges = dendrogram(4, four_points, allowed=allowed)
        assert len(merges) == 2
        assert all(m.members in (frozenset({0, 1}), frozenset({2, 3})) for m in merges)

    def test_infinite_dissimilarity_blocks(self):
        def dis(i, j):
            return math.inf if {i, j} == {0, 1} else 1.0

        merges = dendrogram(3, dis)
        # 0 and 1 can still end up together via cluster {0,2} ∪ {1}:
        # Lance-Williams keeps inf only until a finite path exists.
        assert len(merges) >= 1


class TestAPI:
    def test_until_clusters(self, four_points):
        hac = AgglomerativeClustering(4, four_points)
        merges = hac.run(until_clusters=2)
        assert len(merges) == 2
        assert len(hac.clusters()) == 2

    def test_validation(self, four_points):
        with pytest.raises(ValueError, match="unknown linkage"):
            AgglomerativeClustering(4, four_points, linkage="bogus")
        with pytest.raises(ValueError, match="at least one item"):
            AgglomerativeClustering(0, four_points)
        with pytest.raises(ValueError, match="at least 1"):
            AgglomerativeClustering(4, four_points).run(0)

    def test_merge_once_returns_none_when_done(self):
        hac = AgglomerativeClustering(1, lambda i, j: 0.0)
        assert hac.merge_once() is None

    @pytest.mark.parametrize("linkage", LINKAGES)
    def test_all_linkages_complete(self, linkage, four_points):
        merges = dendrogram(4, four_points, linkage=linkage)
        assert len(merges) == 3
        assert merges[-1].members == frozenset({0, 1, 2, 3})


@settings(max_examples=30, deadline=None)
@given(
    points=st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        min_size=2,
        max_size=8,
    )
)
def test_property_dendrogram_is_complete_and_nested(points):
    merges = dendrogram(len(points), lambda i, j: abs(points[i] - points[j]))
    assert len(merges) == len(points) - 1
    # Every merge's members are the union of previously formed clusters.
    assert merges[-1].members == frozenset(range(len(points)))
