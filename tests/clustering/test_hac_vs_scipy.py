"""Cross-validate our HAC against scipy.cluster.hierarchy.

Our Lance-Williams implementation must produce the same dendrogram
merge heights as scipy's reference linkage code on unconstrained
Euclidean inputs, for every linkage the two share.  (scipy is a test
dependency only -- the library itself is stdlib-pure.)
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from scipy.cluster.hierarchy import linkage as scipy_linkage
from scipy.spatial.distance import pdist

from repro.clustering import AgglomerativeClustering

#: our linkage name → scipy method name (on Euclidean distances).
_SCIPY_NAMES = {
    "single": "single",
    "complete": "complete",
    "average": "average",
    "weighted_average": "weighted",
}


def run_ours(points: np.ndarray, linkage: str):
    def dissimilarity(i: int, j: int) -> float:
        return float(np.linalg.norm(points[i] - points[j]))

    hac = AgglomerativeClustering(len(points), dissimilarity, linkage=linkage)
    return hac.run(1)


@pytest.mark.parametrize("linkage", sorted(_SCIPY_NAMES))
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_merge_heights_match_scipy(linkage, data):
    n = data.draw(st.integers(min_value=3, max_value=9))
    coordinates = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    points = np.asarray(coordinates, dtype=float)
    # Equal pairwise distances admit several valid dendrograms and
    # scipy's nn-chain breaks such ties differently than our greedy
    # search does (e.g. integer grids where two pairs are both at
    # sqrt(1061)), so only tie-free inputs are comparable.
    squared = [
        (points[i] - points[j]) @ (points[i] - points[j])
        for i in range(len(points))
        for j in range(i + 1, len(points))
    ]
    assume(len(set(map(int, squared))) == len(squared))
    ours = sorted(merge.dissimilarity for merge in run_ours(points, linkage))
    theirs = sorted(
        scipy_linkage(pdist(points), method=_SCIPY_NAMES[linkage])[:, 2].tolist()
    )
    assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)


def test_ward_matches_scipy_on_squared_distances():
    """Ward via Lance-Williams over *squared* Euclidean distances gives
    squared scipy heights (scipy reports sqrt of the SSE increase)."""
    rng = np.random.default_rng(5)
    points = rng.normal(size=(8, 3))

    def squared(i: int, j: int) -> float:
        return float(np.sum((points[i] - points[j]) ** 2))

    hac = AgglomerativeClustering(len(points), squared, linkage="ward")
    ours = sorted(merge.dissimilarity for merge in hac.run(1))
    theirs = sorted((scipy_linkage(pdist(points), method="ward")[:, 2] ** 2).tolist())
    assert ours == pytest.approx(theirs, rel=1e-9)


def test_centroid_matches_scipy_on_squared_distances():
    rng = np.random.default_rng(7)
    points = rng.normal(size=(7, 2))

    def squared(i: int, j: int) -> float:
        return float(np.sum((points[i] - points[j]) ** 2))

    hac = AgglomerativeClustering(len(points), squared, linkage="centroid")
    ours = sorted(merge.dissimilarity for merge in hac.run(1))
    theirs = sorted(
        (scipy_linkage(pdist(points), method="centroid")[:, 2] ** 2).tolist()
    )
    assert ours == pytest.approx(theirs, rel=1e-9)


def test_median_matches_scipy_on_squared_distances():
    rng = np.random.default_rng(9)
    points = rng.normal(size=(7, 2))

    def squared(i: int, j: int) -> float:
        return float(np.sum((points[i] - points[j]) ** 2))

    hac = AgglomerativeClustering(len(points), squared, linkage="median")
    ours = sorted(merge.dissimilarity for merge in hac.run(1))
    theirs = sorted(
        (scipy_linkage(pdist(points), method="median")[:, 2] ** 2).tolist()
    )
    assert ours == pytest.approx(theirs, rel=1e-9)
