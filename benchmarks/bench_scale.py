"""Scaling: summarization time vs input provenance size.

Complements Fig 6.5 (which tracks the shrinking expression *within*
one run) with the across-instances view: how total summarization time
grows as the input provenance grows.  Candidate enumeration is
quadratic in the mergeable-annotation count and every candidate is
scored against every valuation, so super-linear growth is expected;
the bench records the measured curve and asserts only monotonicity.
"""

from repro.core import SummarizationConfig, Summarizer
from repro.datasets import MovieLensConfig, generate_movielens
from repro.experiments import check_shapes, format_rows

from conftest import emit

SCALES = ((15, 8), (30, 12), (60, 20))


def test_scale(benchmark):
    def sweep():
        rows = []
        for n_users, n_movies in SCALES:
            instance = generate_movielens(
                MovieLensConfig(n_users=n_users, n_movies=n_movies, seed=17)
            )
            result = Summarizer(
                instance.problem(),
                SummarizationConfig(w_dist=0.5, max_steps=10, seed=17),
            ).run()
            rows.append(
                {
                    "n_users": n_users,
                    "provenance_size": result.original_size,
                    "candidates_step1": result.steps[0].n_candidates
                    if result.steps
                    else 0,
                    "seconds": result.total_seconds,
                    "final_size": result.final_size,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    times = [row["seconds"] for row in rows]
    sizes = [row["provenance_size"] for row in rows]
    checks = [
        ("provenance size grows with the user count", sizes == sorted(sizes)),
        ("summarization time grows with input size", times == sorted(times)),
        (
            "the 4x instance stays laptop-friendly (< 60 s for 10 steps)",
            times[-1] < 60.0,
        ),
    ]
    emit(
        "scale",
        "summarization time vs input provenance size (10 steps, wDist=0.5)",
        format_rows(rows) + "\n\n" + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
