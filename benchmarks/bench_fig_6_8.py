"""Figure 6.8 -- DDP average distance vs wDist and TARGET-SIZE.

Cancel-Single-Attribute valuations, tropical cost semiring, ≤10 steps.
The Clustering baseline is absent by design: no meaningful feature
vectors exist for DDP provenance (§6.1, §6.10).
"""

from repro.core import SummarizationConfig
from repro.experiments import (
    check_shapes,
    ddp_spec,
    execute,
    format_rows,
    mean_of,
    series,
    target_size_experiment,
    trend,
)

from repro.experiments.ascii_chart import chart_from_rows

from conftest import FAST_SEEDS, emit


def test_fig_6_8a_distance_vs_wdist(benchmark, ddp_wdist_rows):
    rows = ddp_wdist_rows
    assert {row["algorithm"] for row in rows} == {"prov-approx", "random"}
    prov = [
        value
        for _, value in series(
            rows, "w_dist", "avg_distance", {"algorithm": "prov-approx"}
        )
    ]
    checks = [
        ("Prov-Approx distance trends down as wDist grows", trend(prov) <= 1e-9),
        (
            "Prov-Approx (wDist=1) beats Random",
            prov[-1]
            <= mean_of(rows, "avg_distance", {"algorithm": "random"}) + 1e-9,
        ),
    ]
    emit(
        "fig_6_8a",
        "DDP avg distance vs wDist (no Clustering, §6.1)",
        format_rows(rows, ("algorithm", "w_dist", "avg_distance", "avg_size"))
        + "\n\n"
        + chart_from_rows(
            rows, x="w_dist", y="avg_distance", split_by="algorithm", width=44, height=10
        )
        + "\n\n"
        + check_shapes(checks),
    )
    benchmark.pedantic(
        lambda: execute(
            ddp_spec(),
            "prov-approx",
            SummarizationConfig(w_dist=0.5, max_steps=10, seed=11),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(passed for _, passed in checks)


def test_fig_6_8b_distance_vs_target_size(benchmark):
    rows = benchmark.pedantic(
        lambda: target_size_experiment(
            ddp_spec(),
            seeds=FAST_SEEDS,
            size_fractions=(0.85, 0.92, 0.97),
        ),
        rounds=1,
        iterations=1,
    )
    prov = [
        value
        for _, value in series(
            rows,
            "target_size_fraction",
            "avg_distance",
            {"algorithm": "prov-approx"},
        )
    ]
    checks = [
        ("looser TARGET-SIZE gives smaller distance", trend(prov) <= 1e-9),
        (
            "Prov-Approx distance <= Random across targets",
            mean_of(rows, "avg_distance", {"algorithm": "prov-approx"})
            <= mean_of(rows, "avg_distance", {"algorithm": "random"}) + 1e-9,
        ),
    ]
    emit(
        "fig_6_8b",
        "DDP avg distance vs TARGET-SIZE (wDist=1)",
        format_rows(
            rows, ("algorithm", "target_size_fraction", "avg_distance", "avg_size")
        )
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
