"""Ablation: normalized vs ordinal CandidateScore ranks.

Definition 3.2.4 scores candidates by distance/size *ranks*; DESIGN.md
documents the two readings we implement.  The bench runs both on the
same instances and verifies they produce comparable quality -- the
wDist tradeoff direction must hold under either reading.
"""

from repro.core import SummarizationConfig
from repro.experiments import check_shapes, execute, format_rows, movielens_spec

from conftest import FAST_SEEDS, emit

STRATEGIES = ("normalized", "ordinal")
WDISTS = (0.0, 1.0)


def test_ablation_scoring(benchmark):
    def sweep():
        rows = []
        for strategy in STRATEGIES:
            for w_dist in WDISTS:
                results = [
                    execute(
                        movielens_spec(),
                        "prov-approx",
                        SummarizationConfig(
                            w_dist=w_dist,
                            max_steps=15,
                            scoring=strategy,
                            seed=seed,
                        ),
                        seed=seed,
                    )
                    for seed in FAST_SEEDS
                ]
                rows.append(
                    {
                        "scoring": strategy,
                        "w_dist": w_dist,
                        "avg_distance": sum(
                            r.final_distance.normalized for r in results
                        )
                        / len(results),
                        "avg_size": sum(r.final_size for r in results) / len(results),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    def cell(strategy, w_dist, metric):
        return next(
            row[metric]
            for row in rows
            if row["scoring"] == strategy and row["w_dist"] == w_dist
        )

    checks = []
    for strategy in STRATEGIES:
        checks.append(
            (
                f"{strategy}: wDist=1 yields distance <= wDist=0",
                cell(strategy, 1.0, "avg_distance")
                <= cell(strategy, 0.0, "avg_distance") + 1e-9,
            )
        )
        checks.append(
            (
                f"{strategy}: wDist=0 yields size <= wDist=1",
                cell(strategy, 0.0, "avg_size")
                <= cell(strategy, 1.0, "avg_size") + 1e-9,
            )
        )
    emit(
        "ablation_scoring",
        "CandidateScore rank readings: normalized vs ordinal",
        format_rows(rows) + "\n\n" + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
