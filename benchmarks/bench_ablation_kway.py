"""Ablation: k-way merges (the thesis's stated future work, Ch. 9).

"We intend to explore a generalized version of the algorithm in which
in each iteration we map k annotations to a new annotation rather than
just 2 ... the more annotations mapped in a single step, the more work
done by the algorithm in a single step and so less algorithm steps are
required to reach the stop condition."

The bench sweeps the merge arity on the MovieLens dataset with a fixed
TARGET-SIZE and confirms that tradeoff: higher arity reaches the bound
in fewer steps, at a (weakly) higher distance per step taken.
"""

from repro.core import SummarizationConfig
from repro.experiments import check_shapes, execute, format_rows, movielens_spec

from conftest import FAST_SEEDS, emit

ARITIES = (2, 3, 4)


def run_arity(arity: int, seed: int):
    spec = movielens_spec()
    original = spec.factory(seed).expression.size()
    return execute(
        spec,
        "prov-approx",
        SummarizationConfig(
            w_dist=0.5,
            target_size=int(original * 0.6),
            max_steps=200,
            merge_arity=arity,
            seed=seed,
        ),
        seed=seed,
    )


def test_ablation_kway(benchmark):
    results = benchmark.pedantic(
        lambda: {
            arity: [run_arity(arity, seed) for seed in FAST_SEEDS]
            for arity in ARITIES
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for arity, arity_results in results.items():
        rows.append(
            {
                "merge_arity": arity,
                "avg_steps": sum(r.n_steps for r in arity_results) / len(arity_results),
                "avg_size": sum(r.final_size for r in arity_results)
                / len(arity_results),
                "avg_distance": sum(
                    r.final_distance.normalized for r in arity_results
                )
                / len(arity_results),
                "all_hit_target": all(
                    r.stop_reason == "target_size" for r in arity_results
                ),
            }
        )
    steps = {row["merge_arity"]: row["avg_steps"] for row in rows}
    checks = [
        ("every arity reaches TARGET-SIZE", all(r["all_hit_target"] for r in rows)),
        (
            "higher arity needs fewer (or equal) steps",
            steps[2] >= steps[3] >= steps[4],
        ),
    ]
    emit(
        "ablation_kway",
        "k-way merges: steps to TARGET-SIZE vs merge arity",
        format_rows(rows) + "\n\n" + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
