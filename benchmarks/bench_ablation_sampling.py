"""Ablation: sampling budget of the distance approximation (Prop 4.1.2).

DIST-COMP is #P-hard; the sampling algorithm's error shrinks with the
number of samples (Chebyshev).  The bench measures the absolute error
of the sampled estimate against the exhaustively enumerated DIST-COMP
value on a small expression, across sampling budgets.
"""

import random
import statistics

from repro.core import (
    DistanceComputer,
    DomainCombiners,
    EuclideanDistance,
    MappingState,
    exhaustive_distance,
)
from repro.experiments import check_shapes, format_rows
from repro.provenance import (
    MAX,
    Annotation,
    AnnotationUniverse,
    ExplicitValuations,
    TensorSum,
    Term,
    cancel,
)

from conftest import emit

BUDGETS = (5, 20, 80, 320)
TRIALS = 24


def build_case():
    universe = AnnotationUniverse()
    names = [f"u{i}" for i in range(8)]
    for index, name in enumerate(names):
        universe.register(Annotation(name, "user", {"g": index % 2}))
    expression = TensorSum(
        [
            Term((name,), float(index % 5 + 1), group=f"m{index % 3}")
            for index, name in enumerate(names)
        ],
        MAX,
    )
    summary_annotation = universe.new_summary(
        [universe["u0"], universe["u2"], universe["u4"]], label="even"
    )
    step = {name: summary_annotation.name for name in ("u0", "u2", "u4")}
    mapping = MappingState(names).compose(step)
    summary = expression.apply_mapping(step)
    # The all-subsets valuation class realizes DIST-COMP exactly.
    valuations = ExplicitValuations(
        [
            cancel([name for bit, name in enumerate(names) if mask >> bit & 1])
            if mask
            else cancel([])
            for mask in range(2 ** len(names))
        ]
    )
    return universe, expression, summary, mapping, valuations


def test_ablation_sampling(benchmark):
    universe, expression, summary, mapping, valuations = build_case()
    truth = exhaustive_distance(
        expression,
        summary,
        mapping,
        EuclideanDistance(MAX),
        DomainCombiners(),
        universe,
    )

    def sweep():
        rows = []
        for budget in BUDGETS:
            errors = []
            for trial in range(TRIALS):
                computer = DistanceComputer(
                    expression,
                    valuations,
                    EuclideanDistance(MAX),
                    DomainCombiners(),
                    universe,
                    max_enumerate=0,
                    n_samples=budget,
                    rng=random.Random(1000 * budget + trial),
                )
                estimate = computer.distance(summary, mapping)
                errors.append(abs(estimate.normalized - truth))
            rows.append(
                {
                    "n_samples": budget,
                    "mean_abs_error": statistics.mean(errors),
                    "max_abs_error": max(errors),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    means = [row["mean_abs_error"] for row in rows]
    checks = [
        (
            "mean error shrinks with the sampling budget",
            means[0] >= means[-1],
        ),
        (
            "320 samples land within 0.02 of DIST-COMP on average",
            means[-1] < 0.02,
        ),
    ]
    emit(
        "ablation_sampling",
        f"sampling error vs budget (exhaustive DIST-COMP = {truth:.4f})",
        format_rows(rows) + "\n\n" + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
