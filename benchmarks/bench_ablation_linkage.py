"""Ablation: HAC linkage criteria (§6.2).

"All linkage criteria were examined in the experiments, but since they
all yield similar results compared to our approach we present the
'Single Linkage' results."  This bench runs the Clustering baseline
with every linkage on identical MovieLens instances and verifies (a)
the criteria do land in a similar quality band, and (b) each of them
still loses to Prov-Approx on distance at wDist = 1.
"""

import statistics

from repro.clustering import LINKAGES
from repro.core import ClusteringSummarizer, SummarizationConfig, Summarizer
from repro.experiments import check_shapes, format_rows, movielens_spec

from conftest import FAST_SEEDS, emit


def test_ablation_linkage(benchmark):
    spec = movielens_spec()

    def sweep():
        rows = []
        for linkage in LINKAGES:
            results = []
            for seed in FAST_SEEDS:
                instance = spec.factory(seed)
                results.append(
                    ClusteringSummarizer(
                        instance.problem(),
                        SummarizationConfig(max_steps=20, seed=seed),
                        instance.cluster_specs,
                        linkage=linkage,
                    ).run()
                )
            rows.append(
                {
                    "linkage": linkage,
                    "avg_distance": statistics.mean(
                        r.final_distance.normalized for r in results
                    ),
                    "avg_size": statistics.mean(r.final_size for r in results),
                }
            )
        prov = [
            Summarizer(
                spec.factory(seed).problem(),
                SummarizationConfig(w_dist=1.0, max_steps=20, seed=seed),
            ).run()
            for seed in FAST_SEEDS
        ]
        rows.append(
            {
                "linkage": "(prov-approx, wDist=1)",
                "avg_distance": statistics.mean(
                    r.final_distance.normalized for r in prov
                ),
                "avg_size": statistics.mean(r.final_size for r in prov),
            }
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    linkage_rows = [row for row in rows if not row["linkage"].startswith("(")]
    prov_row = rows[-1]
    distances = [row["avg_distance"] for row in linkage_rows]
    checks = [
        (
            "the seven linkages land in a similar band (spread < 0.02)",
            max(distances) - min(distances) < 0.02,
        ),
        (
            "every linkage still loses to Prov-Approx (wDist=1) on distance",
            all(
                row["avg_distance"] >= prov_row["avg_distance"] - 1e-9
                for row in linkage_rows
            ),
        ),
    ]
    emit(
        "ablation_linkage",
        "Clustering baseline quality per linkage criterion",
        format_rows(rows) + "\n\n" + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
