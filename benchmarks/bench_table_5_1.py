"""Table 5.1 -- provenance and summarization parameters per dataset.

Regenerates the table from the dataset builders' own descriptions, so
it always reflects what the code actually does.
"""

from repro.datasets import (
    DDPConfig,
    MovieLensConfig,
    WikipediaConfig,
    format_table_5_1,
    generate_ddp,
    generate_movielens,
    generate_wikipedia,
)
from repro.experiments import check_shapes

from conftest import emit


def test_table_5_1(benchmark):
    instances = benchmark.pedantic(
        lambda: [
            generate_movielens(MovieLensConfig(seed=0)),
            generate_wikipedia(WikipediaConfig(seed=0)),
            generate_ddp(DDPConfig(seed=0)),
        ],
        rounds=1,
        iterations=1,
    )
    rows = [instance.describe_row() for instance in instances]
    table = format_table_5_1(rows)
    checks = [
        ("all three Table 5.1 datasets present", len(rows) == 3),
        (
            "MovieLens constrains by gender/age/occupation/zip",
            all(
                key in rows[0]["Mapping Constraints"]
                for key in ("gender", "age_range", "occupation", "zip_region")
            ),
        ),
        (
            "Wikipedia pages constrained by taxonomy ancestor",
            "taxonomy ancestor" in rows[1]["Mapping Constraints"],
        ),
        (
            "DDP lifts cost variables with MAX",
            "cost: MAX" in rows[2]["φ Functions"],
        ),
    ]
    emit("table_5_1", "Dataset / summarization parameters", table + "\n\n" + check_shapes(checks))
    assert all(passed for _, passed in checks)
