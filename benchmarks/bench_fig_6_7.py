"""Figure 6.7 -- Wikipedia average size vs wDist and TARGET-DIST (§6.10)."""

from repro.core import SummarizationConfig
from repro.experiments import (
    check_shapes,
    execute,
    format_rows,
    mean_of,
    series,
    target_dist_experiment,
    trend,
    weakly_monotone,
    wikipedia_spec,
)

from repro.experiments.ascii_chart import chart_from_rows

from conftest import FAST_SEEDS, emit


def test_fig_6_7a_size_vs_wdist(benchmark, wikipedia_wdist_rows):
    rows = wikipedia_wdist_rows
    prov = [
        value
        for _, value in series(rows, "w_dist", "avg_size", {"algorithm": "prov-approx"})
    ]
    checks = [
        ("Prov-Approx size grows with wDist", trend(prov) >= 0.0),
        (
            "Prov-Approx (wDist=0) is the smallest",
            prov[0]
            <= min(
                mean_of(rows, "avg_size", {"algorithm": "clustering"}),
                mean_of(rows, "avg_size", {"algorithm": "random"}),
            )
            + 1e-9,
        ),
    ]
    emit(
        "fig_6_7a",
        "Wikipedia avg size vs wDist",
        format_rows(rows, ("algorithm", "w_dist", "avg_size", "avg_distance"))
        + "\n\n"
        + chart_from_rows(
            rows, x="w_dist", y="avg_size", split_by="algorithm", width=44, height=10
        )
        + "\n\n"
        + check_shapes(checks),
    )
    benchmark.pedantic(
        lambda: execute(
            wikipedia_spec(),
            "prov-approx",
            SummarizationConfig(w_dist=0.0, max_steps=20, seed=11),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(passed for _, passed in checks)


def test_fig_6_7b_size_vs_target_dist(benchmark):
    rows = benchmark.pedantic(
        lambda: target_dist_experiment(
            wikipedia_spec(),
            seeds=FAST_SEEDS,
            target_dists=(0.02, 0.05, 0.1, 0.2),
            max_steps=60,
        ),
        rounds=1,
        iterations=1,
    )
    prov = [
        value
        for _, value in series(
            rows, "target_dist", "avg_size", {"algorithm": "prov-approx"}
        )
    ]
    checks = [
        (
            "size decreases (until a floor) as TARGET-DIST loosens",
            weakly_monotone(prov, "decreasing", tolerance=2.0),
        ),
        (
            "Prov-Approx sizes <= Random sizes on average",
            mean_of(rows, "avg_size", {"algorithm": "prov-approx"})
            <= mean_of(rows, "avg_size", {"algorithm": "random"}) + 1e-9,
        ),
    ]
    emit(
        "fig_6_7b",
        "Wikipedia avg size vs TARGET-DIST (wDist=0)",
        format_rows(rows, ("algorithm", "target_dist", "avg_size", "avg_distance"))
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
