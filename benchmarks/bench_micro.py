"""Micro-benchmarks of the core operations on Algorithm 1's hot path.

These are real repeated-measurement benchmarks (multiple rounds), in
contrast to the figure regenerations: evaluation under a valuation,
homomorphism application, one full step of candidate scoring through
the batch scorer vs the reference computer.
"""

import pytest

from repro.core import (
    DistanceComputer,
    MappingState,
    enumerate_candidates,
    virtual_summary,
)
from repro.core.fast_distance import FastStepScorer
from repro.core.summarize import _OverlayUniverse
from repro.datasets import MovieLensConfig, generate_movielens


@pytest.fixture(scope="module")
def setting():
    instance = generate_movielens(MovieLensConfig(n_users=20, n_movies=10, seed=3))
    problem = instance.problem()
    computer = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
    )
    mapping = MappingState(sorted(problem.expression.annotation_names()))
    candidates = enumerate_candidates(
        problem.expression, problem.universe, problem.constraint
    )
    return problem, computer, mapping, candidates


def test_micro_evaluate_masked(benchmark, setting):
    problem, _, _, _ = setting
    expression = problem.expression
    names = sorted(expression.annotation_names())
    benchmark(expression.evaluate, frozenset(names[:3]))


def test_micro_evaluate_scan(benchmark, setting):
    problem, _, _, _ = setting
    expression = problem.expression
    truth = {name: True for name in expression.annotation_names()}
    benchmark(expression.evaluate_scan, truth)


def test_micro_apply_mapping(benchmark, setting):
    problem, _, _, candidates = setting
    candidate = candidates[0]
    step = {name: "merged" for name in candidate.parts}
    benchmark(problem.expression.apply_mapping, step)


def test_micro_reference_candidate_scoring(benchmark, setting):
    problem, computer, mapping, candidates = setting
    candidate = candidates[0]

    def score_reference():
        parts = [problem.universe[name] for name in candidate.parts]
        virtual = virtual_summary(parts, candidate.proposal)
        overlay = _OverlayUniverse(problem.universe, {virtual.name: virtual})
        step = {name: virtual.name for name in candidate.parts}
        expression = problem.expression.apply_mapping(step)
        return computer.distance(expression, mapping.compose(step), universe=overlay)

    benchmark(score_reference)


def test_micro_batch_step_scoring(benchmark, setting):
    """One full step: batch scorer over every candidate."""
    problem, computer, mapping, candidates = setting

    def score_step():
        scorer = FastStepScorer(
            computer, problem.expression, mapping, problem.universe
        )
        return [scorer.score(candidate.parts) for candidate in candidates]

    benchmark(score_step)
