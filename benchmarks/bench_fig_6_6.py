"""Figure 6.6 -- Wikipedia average distance vs wDist and TARGET-SIZE.

Cancel-Single-Annotation valuations, SUM aggregation, ≤20 steps,
taxonomy-constrained page merges (§6.10).  Shapes as for MovieLens.
"""

from repro.core import SummarizationConfig
from repro.experiments import (
    check_shapes,
    execute,
    format_rows,
    mean_of,
    series,
    target_size_experiment,
    trend,
    wikipedia_spec,
)

from repro.experiments.ascii_chart import chart_from_rows

from conftest import FAST_SEEDS, emit


def test_fig_6_6a_distance_vs_wdist(benchmark, wikipedia_wdist_rows):
    rows = wikipedia_wdist_rows
    prov = [
        value
        for _, value in series(
            rows, "w_dist", "avg_distance", {"algorithm": "prov-approx"}
        )
    ]
    checks = [
        ("Prov-Approx distance trends down as wDist grows", trend(prov) <= 1e-9),
        (
            "Prov-Approx (wDist=1) beats both baselines",
            prov[-1]
            <= min(
                mean_of(rows, "avg_distance", {"algorithm": "clustering"}),
                mean_of(rows, "avg_distance", {"algorithm": "random"}),
            )
            + 1e-9,
        ),
    ]
    emit(
        "fig_6_6a",
        "Wikipedia avg distance vs wDist",
        format_rows(rows, ("algorithm", "w_dist", "avg_distance", "avg_size"))
        + "\n\n"
        + chart_from_rows(
            rows, x="w_dist", y="avg_distance", split_by="algorithm", width=44, height=10
        )
        + "\n\n"
        + check_shapes(checks),
    )
    benchmark.pedantic(
        lambda: execute(
            wikipedia_spec(),
            "prov-approx",
            SummarizationConfig(w_dist=0.5, max_steps=20, seed=11),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(passed for _, passed in checks)


def test_fig_6_6b_distance_vs_target_size(benchmark):
    rows = benchmark.pedantic(
        lambda: target_size_experiment(
            wikipedia_spec(),
            seeds=FAST_SEEDS,
            size_fractions=(0.5, 0.65, 0.8),
        ),
        rounds=1,
        iterations=1,
    )
    prov = [
        value
        for _, value in series(
            rows,
            "target_size_fraction",
            "avg_distance",
            {"algorithm": "prov-approx"},
        )
    ]
    checks = [
        ("looser TARGET-SIZE gives smaller distance", trend(prov) <= 1e-9),
        (
            "Prov-Approx distance <= Random across targets",
            mean_of(rows, "avg_distance", {"algorithm": "prov-approx"})
            <= mean_of(rows, "avg_distance", {"algorithm": "random"}) + 1e-9,
        ),
    ]
    emit(
        "fig_6_6b",
        "Wikipedia avg distance vs TARGET-SIZE (wDist=1)",
        format_rows(
            rows, ("algorithm", "target_size_fraction", "avg_distance", "avg_size")
        )
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
