#!/usr/bin/env python
"""Cross-step candidate carry vs. the seed per-step rebuild loop.

Runs the same greedy summarization (MovieLens-style provenance) under
three Algorithm-1 loop configurations:

* ``seed``  -- ``carry=off``: fresh ``enumerate_candidates`` + full
  re-score every step (the pre-carry behavior);
* ``carry`` -- ``carry=on``: the :class:`~repro.core.pool
  .CandidatePool` maintains the candidate list across steps and the
  engine delta-rescores only the merge-affected neighborhood;
* ``lazy``  -- ``carry=on, lazy=on``: additionally selects the winner
  through the lazy-greedy priority queue, re-scoring only popped
  queue heads (sound by Prop 4.2.2 monotonicity).

All modes must produce the identical merge sequence (asserted).  The
table reports steps/second and the fraction of candidates freshly
re-scored per step after the first (the carried fraction is its
complement); the JSON mirror lands in
``benchmarks/results/candidate_carry.json`` (uploaded as a CI
artifact).  The headline acceptance number is the lazy mode's
re-score reduction: candidates scored per step after the first must
drop by at least 3x vs. the seed loop.

``--quick`` runs a small instance (CI smoke): it exercises every mode,
asserts equivalence and a nonzero carried fraction, and skips the
reduction expectation.  ``--seed`` varies the generated instance (and
the summarizer RNG).

Usage::

    PYTHONPATH=src python benchmarks/bench_candidate_carry.py [--quick]
        [--seed N] [--users N] [--movies N] [--steps N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import SummarizationConfig, Summarizer  # noqa: E402
from repro.datasets import MovieLensConfig, generate_movielens  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "candidate_carry.txt"
RESULTS_JSON_PATH = Path(__file__).parent / "results" / "candidate_carry.json"


def build_problem(n_users: int, n_movies: int, seed: int = 0):
    """MovieLens-style provenance with many small groups.

    Few ratings per user over many movies keeps each merge's affected
    neighborhood small relative to the candidate set -- the regime the
    candidate carry targets (a dense instance re-scores almost
    everything and honestly reports so).
    """
    return generate_movielens(
        MovieLensConfig(
            n_users=n_users,
            n_movies=n_movies,
            min_ratings_per_user=3,
            max_ratings_per_user=5,
            seed=seed,
        )
    ).problem()


def run_mode(n_users, n_movies, steps, seed=0, **knobs):
    problem = build_problem(n_users, n_movies, seed=seed)
    config = SummarizationConfig(w_dist=0.7, max_steps=steps, seed=seed, **knobs)
    started = time.perf_counter()
    result = Summarizer(problem, config).run()
    elapsed = time.perf_counter() - started
    return result, elapsed


def tail_counts(result):
    """(rescored, total) candidates over the steps after the first --
    the first step always measures everything in every mode."""
    tail = result.steps[1:]
    rescored = sum(
        r.n_rescored if r.n_rescored >= 0 else r.n_candidates for r in tail
    )
    total = sum(r.n_candidates for r in tail)
    return rescored, total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small instance")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="instance-generation and summarizer RNG seed",
    )
    parser.add_argument("--users", type=int, default=48)
    parser.add_argument("--movies", type=int, default=60)
    parser.add_argument("--steps", type=int, default=8)
    args = parser.parse_args(argv)

    if args.quick:
        n_users, n_movies, steps = 16, 20, 3
    else:
        n_users, n_movies, steps = args.users, args.movies, args.steps

    modes = [
        ("seed", dict(carry="off")),
        ("carry", dict(carry="on")),
        ("lazy", dict(carry="on", lazy="on")),
    ]

    rows = []
    reference = None
    for label, knobs in modes:
        result, elapsed = run_mode(n_users, n_movies, steps, seed=args.seed, **knobs)
        merges = [record.merged for record in result.steps]
        if reference is None:
            reference = merges
        elif merges != reference:
            print(f"FAIL: mode {label!r} diverged from the seed merge sequence")
            return 1
        rescored, total = tail_counts(result)
        rows.append(
            {
                "mode": label,
                "seconds": elapsed,
                "steps_per_second": result.n_steps / elapsed if elapsed else None,
                "steps": result.n_steps,
                "tail_rescored": rescored,
                "tail_total": total,
                "rescored_fraction": rescored / total if total else None,
            }
        )

    base = rows[0]
    lines = [
        f"instance: movielens n_users={n_users} n_movies={n_movies} "
        f"steps={steps} seed={args.seed} cores={os.cpu_count()}",
        "",
        f"{'mode':<8} {'seconds':>9} {'steps/s':>9} {'rescored/step>1':>17} "
        f"{'reduction':>10}",
    ]
    for row in rows:
        reduction = (
            base["tail_rescored"] / row["tail_rescored"]
            if row["tail_rescored"]
            else float("inf")
        )
        row["rescore_reduction_vs_seed"] = (
            None if reduction == float("inf") else reduction
        )
        lines.append(
            f"{row['mode']:<8} {row['seconds']:>9.3f} "
            f"{row['steps_per_second']:>9.2f} "
            f"{row['tail_rescored']:>8}/{row['tail_total']:<8} "
            f"{reduction:>9.2f}x"
        )
    lines.append("")
    lines.append("all modes produced the identical merge sequence")
    body = "\n".join(lines)
    print(body)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(body + "\n")
    print(f"\nwritten to {RESULTS_PATH}")

    payload = {
        "benchmark": "candidate_carry",
        "quick": args.quick,
        "instance": {
            "dataset": "movielens",
            "n_users": n_users,
            "n_movies": n_movies,
            "steps": steps,
            "seed": args.seed,
            "cores": os.cpu_count(),
        },
        "modes": rows,
        "identical_merge_sequence": True,
    }
    RESULTS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {RESULTS_JSON_PATH}")

    carried_fraction = 1.0 - (rows[2]["rescored_fraction"] or 1.0)
    if carried_fraction <= 0.0:
        print("FAIL: the lazy carry never carried a candidate measurement")
        return 1
    if not args.quick:
        reduction = rows[2]["rescore_reduction_vs_seed"] or float("inf")
        if reduction < 3.0:
            print(
                f"FAIL: lazy re-score reduction {reduction:.2f}x < 3x acceptance "
                "target"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
