"""Figure 6.3 -- distance and size vs wDist for varying step budgets.

More steps means more merges: larger distances and smaller sizes
(§6.7).  At the deepest budget most runs hit constraint exhaustion
before the bound, so the wDist effect flattens -- exactly the
behaviour the thesis reports for 40 steps.
"""

from repro.experiments import (
    check_shapes,
    format_rows,
    mean_of,
    movielens_spec,
    series,
    steps_experiment,
    trend,
)

from conftest import FAST_SEEDS, emit

STEPS_GRID = (10, 20, 40)
WDIST_GRID = (0.0, 0.5, 1.0)


def test_fig_6_3_steps(benchmark):
    rows = benchmark.pedantic(
        lambda: steps_experiment(
            movielens_spec(),
            seeds=FAST_SEEDS,
            wdist_grid=WDIST_GRID,
            steps_grid=STEPS_GRID,
        ),
        rounds=1,
        iterations=1,
    )
    sizes_by_budget = {
        budget: mean_of(rows, "avg_size", {"max_steps": budget})
        for budget in STEPS_GRID
    }
    distances_by_budget = {
        budget: mean_of(rows, "avg_distance", {"max_steps": budget})
        for budget in STEPS_GRID
    }
    spread_of = {
        budget: _spread(
            [
                value
                for _, value in series(
                    rows, "w_dist", "avg_distance", {"max_steps": budget}
                )
            ]
        )
        for budget in STEPS_GRID
    }
    checks = [
        (
            "more steps => smaller sizes",
            sizes_by_budget[10] >= sizes_by_budget[20] >= sizes_by_budget[40],
        ),
        (
            "more steps => larger distances",
            distances_by_budget[10]
            <= distances_by_budget[20] + 1e-9
            and distances_by_budget[20] <= distances_by_budget[40] + 1e-9,
        ),
        (
            "wDist still shapes the 20-step curve (distance trends down)",
            trend(
                [
                    value
                    for _, value in series(
                        rows, "w_dist", "avg_distance", {"max_steps": 20}
                    )
                ]
            )
            <= 1e-9,
        ),
        (
            "the deepest budget flattens the wDist effect",
            spread_of[40] <= spread_of[20] + 1e-9 or spread_of[40] < 0.01,
        ),
    ]
    emit(
        "fig_6_3",
        "MovieLens distance & size vs wDist for steps in {10, 20, 40}",
        format_rows(
            rows, ("max_steps", "w_dist", "avg_distance", "avg_size", "avg_steps")
        )
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)


def _spread(values):
    return max(values) - min(values) if values else 0.0
