"""Figure 6.9 -- DDP average size vs wDist and TARGET-DIST (§6.10)."""

from repro.core import SummarizationConfig
from repro.experiments import (
    check_shapes,
    ddp_spec,
    execute,
    format_rows,
    mean_of,
    series,
    target_dist_experiment,
    weakly_monotone,
)

from repro.experiments.ascii_chart import chart_from_rows

from conftest import FAST_SEEDS, emit


def test_fig_6_9a_size_vs_wdist(benchmark, ddp_wdist_rows):
    rows = ddp_wdist_rows
    prov = [
        value
        for _, value in series(rows, "w_dist", "avg_size", {"algorithm": "prov-approx"})
    ]
    checks = [
        (
            "size never decreases as wDist grows",
            weakly_monotone(prov, "increasing", tolerance=1.0),
        ),
        (
            "Prov-Approx reaches sizes <= Random",
            min(prov)
            <= mean_of(rows, "avg_size", {"algorithm": "random"}) + 1e-9,
        ),
    ]
    emit(
        "fig_6_9a",
        "DDP avg size vs wDist",
        format_rows(rows, ("algorithm", "w_dist", "avg_size", "avg_distance"))
        + "\n\n"
        + chart_from_rows(
            rows, x="w_dist", y="avg_size", split_by="algorithm", width=44, height=10
        )
        + "\n\n"
        + check_shapes(checks),
    )
    benchmark.pedantic(
        lambda: execute(
            ddp_spec(),
            "prov-approx",
            SummarizationConfig(w_dist=0.0, max_steps=10, seed=11),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(passed for _, passed in checks)


def test_fig_6_9b_size_vs_target_dist(benchmark):
    rows = benchmark.pedantic(
        lambda: target_dist_experiment(
            ddp_spec(),
            seeds=FAST_SEEDS,
            target_dists=(0.01, 0.03, 0.08, 0.15),
            max_steps=40,
        ),
        rounds=1,
        iterations=1,
    )
    prov = [
        value
        for _, value in series(
            rows, "target_dist", "avg_size", {"algorithm": "prov-approx"}
        )
    ]
    checks = [
        (
            "size decreases (until a floor) as TARGET-DIST loosens",
            weakly_monotone(prov, "decreasing", tolerance=2.0),
        ),
        (
            "Prov-Approx sizes <= Random sizes on average",
            mean_of(rows, "avg_size", {"algorithm": "prov-approx"})
            <= mean_of(rows, "avg_size", {"algorithm": "random"}) + 1e-9,
        ),
    ]
    emit(
        "fig_6_9b",
        "DDP avg size vs TARGET-DIST (wDist=0)",
        format_rows(rows, ("algorithm", "target_dist", "avg_size", "avg_distance"))
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
