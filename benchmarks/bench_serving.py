#!/usr/bin/env python
"""Serving-tier latency and throughput under concurrent sessions.

Stands up a real :class:`~repro.prox.server.ProxServer` (loopback,
free port) and drives it with worker threads issuing the PROX request
mix a live deployment sees:

* ``summarize``  (~30%) -- re-run Algorithm 1 (2 steps, streaming
  repair on), the expensive call that holds the session lock;
* ``views``      (~40%) -- ``/summary/groups`` and
  ``/summary/expression`` reads (409 when an ingest just invalidated
  the summary -- counted as conflicts, not failures);
* ``titles``     (~10%) -- the selection view's title list;
* ``ingest``     (~20%) -- one pre-generated MovieLens delta from a
  shared FIFO.  Pop+POST happen under one ingest mutex so deltas land
  in generation order (later deltas may rate movies an earlier delta
  premiered), the same discipline a real upstream stream imposes.

Each concurrency level reports client-observed p50/p99 latency per
operation and overall, plus wall-clock throughput.  Workers draw ops
from per-worker ``random.Random(seed + worker)`` streams, so the
request mix is deterministic; only timings vary run to run.

The JSON mirror lands in ``benchmarks/results/serving.json`` and is
the committed baseline ``benchmarks/check_regression.py`` diffs fresh
runs against (>25% p99 regression fails CI).

Acceptance: every request completes with 2xx (or an expected 409
view conflict), at least two concurrency levels are measured, and
overall p99 stays under 10s per level -- a gross sanity bound (the
session lock serializes summarize, so tail latency grows with
concurrency), not an SLO; the real regression tolerance lives in
``check_regression.py``.

``--workers N`` additionally benches an in-process sharded front
(:class:`~repro.prox.workers.WorkerFront`) with one session per bench
worker over the ``/sessions/<id>/...`` routes, and gates its
throughput against the single-process rows measured in the same run.
``--url BASE`` drives an already-running multi-session server instead
(the CI multi-worker smoke) without touching the committed results.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
        [--requests N] [--users N] [--movies N]
        [--workers N | --url http://host:port]
"""

from __future__ import annotations

import argparse
import collections
import json
import math
import os
import queue
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.movielens import (  # noqa: E402
    MovieLensConfig,
    MovieLensDeltaConfig,
    generate_movielens,
    generate_movielens_deltas,
)
from repro.prox.server import ProxServer  # noqa: E402
from repro.prox.session import ProxSession  # noqa: E402
from repro.serialization import delta_to_dict  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "serving.txt"
RESULTS_JSON_PATH = Path(__file__).parent / "results" / "serving.json"

#: The request mix: cumulative op weights drawn per worker request.
MIX = (
    ("summarize", 0.30),
    ("groups", 0.25),
    ("expression", 0.15),
    ("titles", 0.10),
    ("ingest", 0.20),
)


def _pick_op(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for op, weight in MIX:
        acc += weight
        if roll < acc:
            return op
    return MIX[-1][0]


def _percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted list (ms)."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


class _Client:
    """Thin urllib client against the benchmark server.

    ``prefix`` scopes every request path, so the same worker loop
    drives both the unscoped single-session routes (``/summarize``)
    and the session-scoped ones (``/sessions/<id>/summarize``).
    """

    def __init__(self, base: str, prefix: str = ""):
        self.base = base
        self.prefix = prefix

    def get(self, path: str) -> int:
        url = self.base + self.prefix + path
        with urllib.request.urlopen(url, timeout=120) as resp:
            resp.read()
            return resp.status

    def post(self, path: str, payload: dict) -> int:
        status, _ = self.post_json(path, payload)
        return status

    def post_json(self, path: str, payload: dict):
        request = urllib.request.Request(
            self.base + self.prefix + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            raw = resp.read()
            return resp.status, json.loads(raw) if raw else {}

    def delete(self, path: str) -> int:
        request = urllib.request.Request(
            self.base + self.prefix + path, method="DELETE"
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            resp.read()
            return resp.status


def _worker(
    client, deltas, ingest_lock, requests, seed, latencies, counters, errors, lock
):
    rng = random.Random(seed)
    summarize_body = {"number_of_steps": 2, "repair": "auto"}
    for _ in range(requests):
        op = _pick_op(rng)
        started = time.perf_counter()
        conflict = False
        try:
            if op == "summarize":
                client.post("/summarize", summarize_body)
            elif op == "groups":
                client.get("/summary/groups")
            elif op == "expression":
                client.get("/summary/expression")
            elif op == "titles":
                client.get("/titles")
            else:  # ingest
                posted = False
                with ingest_lock:
                    try:
                        delta = deltas.get_nowait()
                    except queue.Empty:
                        pass
                    else:
                        client.post("/ingest", delta)
                        posted = True
                if not posted:
                    op = "titles"  # stream drained: fall back to a read
                    client.get("/titles")
        except urllib.error.HTTPError as error:
            if error.code == 409 and op in ("groups", "expression"):
                conflict = True  # ingest invalidated the summary: expected
            else:
                with lock:
                    errors.append(f"{op}: HTTP {error.code}: {error.reason}")
                continue
        except Exception as error:  # pragma: no cover - network trouble
            with lock:
                errors.append(f"{op}: {type(error).__name__}: {error}")
            continue
        elapsed_ms = (time.perf_counter() - started) * 1e3
        with lock:
            latencies[op].append(elapsed_ms)
            counters["conflicts" if conflict else "ok"] += 1


def _bench_config(users, movies):
    return MovieLensConfig(
        n_users=users,
        n_movies=movies,
        min_ratings_per_user=2,
        max_ratings_per_user=3,
        seed=5,
    )


def _bench_schedule(instance, deltas):
    schedule = generate_movielens_deltas(
        instance,
        MovieLensDeltaConfig(
            n_deltas=deltas,
            min_ratings_per_delta=1,
            max_ratings_per_delta=1,
            new_movie_every=4,
            seed=13,
        ),
    )
    return [delta_to_dict(delta) for delta in schedule]


def _build_server(users, movies, deltas):
    instance = generate_movielens(_bench_config(users, movies))
    encoded = _bench_schedule(instance, deltas)
    session = ProxSession(instance)
    server = ProxServer(session)
    server.start()
    host, port = server.address
    client = _Client(f"http://{host}:{port}")
    client.post("/select", {"titles": list(session.titles())})
    client.post("/summarize", {"number_of_steps": 2, "repair": "auto"})
    return server, client, encoded


def _drive(setups, requests_per_worker, seed):
    """Run the request mix over per-worker (client, deltas, ingest_lock)
    setups; returns (latencies, counters, errors, wall_seconds)."""
    latencies = collections.defaultdict(list)
    counters = collections.Counter()
    errors: list = []
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                client,
                deltas,
                ingest_lock,
                requests_per_worker,
                seed + worker,
                latencies,
                counters,
                errors,
                lock,
            ),
            name=f"bench-worker-{worker}",
        )
        for worker, (client, deltas, ingest_lock) in enumerate(setups)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return latencies, counters, errors, wall


def _aggregate(concurrency, total_requests, latencies, counters, errors, wall):
    all_ms = sorted(ms for values in latencies.values() for ms in values)
    ops = {}
    for op in sorted(latencies):
        values = sorted(latencies[op])
        ops[op] = {
            "count": len(values),
            "p50_ms": round(_percentile(values, 0.50), 3),
            "p99_ms": round(_percentile(values, 0.99), 3),
        }
    completed = len(all_ms)
    return {
        "concurrency": concurrency,
        "requests": total_requests,
        "completed": completed,
        "conflicts": counters["conflicts"],
        "errors": len(errors),
        "error_samples": errors[:5],
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(completed / wall, 2) if wall else None,
        "overall": {
            "p50_ms": round(_percentile(all_ms, 0.50), 3) if all_ms else None,
            "p99_ms": round(_percentile(all_ms, 0.99), 3) if all_ms else None,
        },
        "ops": ops,
    }


def run_level(concurrency, requests_per_worker, users, movies, seed=0):
    """One concurrency level against a fresh server; returns its row."""
    total_requests = concurrency * requests_per_worker
    # Enough deltas that the drain fallback stays rare at the expected
    # ingest share of the mix.
    server, client, encoded = _build_server(
        users, movies, deltas=max(4, int(total_requests * 0.3))
    )
    deltas: "queue.Queue[dict]" = queue.Queue()
    for delta in encoded:
        deltas.put(delta)

    # One shared session: every worker shares the client, the delta
    # FIFO and the ingest-ordering mutex.
    ingest_lock = threading.Lock()
    setups = [(client, deltas, ingest_lock)] * concurrency
    latencies, counters, errors, wall = _drive(setups, requests_per_worker, seed)
    server.stop()
    return _aggregate(
        concurrency, total_requests, latencies, counters, errors, wall
    )


def run_session_level(base, concurrency, requests_per_worker, users, movies, seed=0):
    """One concurrency level of session-per-worker traffic at ``base``.

    Against a multi-session server (the sharded front, or any external
    ``repro serve`` via ``--url``): each worker creates its own session
    over ``POST /sessions`` with the benchmark's generator config,
    preloads select+summarize, then runs the same mix over the
    session-scoped routes.  Sessions are independent, so each worker
    ingests its own copy of the delta schedule (ordering still matters
    *within* a session, hence the per-worker FIFO + mutex).
    """
    config = _bench_config(users, movies)
    instance = generate_movielens(config)
    template = ProxSession(instance)
    titles = list(template.titles())
    template.close()
    encoded = _bench_schedule(
        instance, deltas=max(4, int(requests_per_worker * 0.3))
    )
    root = _Client(base)
    setups = []
    session_ids = []
    for worker in range(concurrency):
        status, created = root.post_json(
            "/sessions", {"config": config.__dict__}
        )
        assert status == 201, f"session create failed: HTTP {status}"
        session_id = created["session_id"]
        session_ids.append(session_id)
        client = _Client(base, prefix=f"/sessions/{session_id}")
        client.post("/select", {"titles": titles})
        client.post("/summarize", {"number_of_steps": 2, "repair": "auto"})
        deltas: "queue.Queue[dict]" = queue.Queue()
        for delta in encoded:
            deltas.put(delta)
        setups.append((client, deltas, threading.Lock()))

    latencies, counters, errors, wall = _drive(setups, requests_per_worker, seed)
    for session_id in session_ids:
        try:
            root.delete(f"/sessions/{session_id}")
        except urllib.error.HTTPError:
            pass
    row = _aggregate(
        concurrency,
        concurrency * requests_per_worker,
        latencies,
        counters,
        errors,
        wall,
    )
    row["sessions"] = len(session_ids)
    return row


def run_sharded_level(workers, concurrency, requests_per_worker, users, movies, seed=0):
    """Session-per-worker level against a fresh in-process sharded front."""
    from repro.prox.workers import WorkerFront

    front = WorkerFront(
        n_workers=workers, max_sessions=max(concurrency + 2, 8)
    )
    front.start()
    server = ProxServer(backend=front)
    server.start()
    try:
        host, port = server.address
        row = run_session_level(
            f"http://{host}:{port}",
            concurrency,
            requests_per_worker,
            users,
            movies,
            seed,
        )
        row["workers"] = workers
        return row
    finally:
        server.stop()
        front.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI smoke: small instance, fewer requests"
    )
    parser.add_argument(
        "--requests", type=int, default=0, help="requests per worker (0 = default)"
    )
    parser.add_argument("--users", type=int, default=80)
    parser.add_argument("--movies", type=int, default=300)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also bench an in-process sharded front with N workers "
        "(session-per-worker traffic) and gate it against the "
        "single-process rows",
    )
    parser.add_argument(
        "--url",
        default=None,
        help="drive an already-running multi-session server at this base "
        "URL (session-per-worker traffic); skips the in-process servers "
        "and does not rewrite the committed results",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        users, movies = 40, 120
        levels = (2, 4)
        requests_per_worker = args.requests or 8
    else:
        users, movies = args.users, args.movies
        levels = (2, 8)
        requests_per_worker = args.requests or 25

    if args.url:
        return _run_external(args.url, levels, requests_per_worker, users, movies)

    rows = [
        run_level(concurrency, requests_per_worker, users, movies)
        for concurrency in levels
    ]
    sharded_rows = []
    if args.workers:
        sharded_rows = [
            run_sharded_level(
                args.workers, concurrency, requests_per_worker, users, movies
            )
            for concurrency in levels
        ]

    lines = [
        f"instance: movielens n_users={users} n_movies={movies} "
        f"requests_per_worker={requests_per_worker} cores={os.cpu_count()}",
        f"mix: {' '.join(f'{op}={weight:.0%}' for op, weight in MIX)}",
        "",
        f"{'conc':>4} {'reqs':>5} {'rps':>7} {'p50':>9} {'p99':>9} "
        f"{'summ p99':>10} {'ingest p99':>11} {'conflicts':>9}",
    ]
    for row in rows:
        lines.append(_format_row(row))
    if sharded_rows:
        lines += [
            "",
            f"sharded front: workers={args.workers} "
            f"(one session per bench worker)",
            f"{'conc':>4} {'reqs':>5} {'rps':>7} {'p50':>9} {'p99':>9} "
            f"{'summ p99':>10} {'ingest p99':>11} {'conflicts':>9}",
        ]
        for row in sharded_rows:
            lines.append(_format_row(row))
    body = "\n".join(lines)
    print(body)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(body + "\n")
    print(f"\nwritten to {RESULTS_PATH}")

    payload = {
        "benchmark": "serving",
        "quick": args.smoke,
        "instance": {
            "dataset": "movielens",
            "n_users": users,
            "n_movies": movies,
            "requests_per_worker": requests_per_worker,
            "levels": list(levels),
            "cores": os.cpu_count(),
        },
        "levels": rows,
    }
    if sharded_rows:
        # Extra top-level block: check_regression's serving family only
        # reads "levels", so the fingerprint and diffs are unaffected.
        payload["sharded"] = {
            "workers": args.workers,
            "levels": sharded_rows,
            "vs_single_process": {
                str(row["concurrency"]): {
                    "sharded_rps": row["throughput_rps"],
                    "single_rps": single["throughput_rps"],
                    "speedup": round(
                        row["throughput_rps"] / single["throughput_rps"], 3
                    ),
                }
                for row, single in zip(sharded_rows, rows)
            },
        }
    RESULTS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {RESULTS_JSON_PATH}")

    failed = _check_rows(rows, "single-process")
    if sharded_rows:
        failed = _check_rows(sharded_rows, "sharded") or failed
    if sharded_rows and not args.smoke:
        # The serving-tier acceptance bar, judged at the *saturated*
        # level (the highest concurrency): at >=2 workers the sharded
        # front sustains at least the single-process throughput, with
        # overall p99 inside the /summarize SLO default.  At trivial
        # concurrency a single process wins (nothing contends, and the
        # queue hop is pure overhead) -- that crossover is expected and
        # reported in vs_single_process, not gated.  The smoke instance
        # is too small to amortize the IPC at all, so the gate only
        # runs on the full workload.
        sharded_top, single_top = sharded_rows[-1], rows[-1]
        if sharded_top["throughput_rps"] < single_top["throughput_rps"]:
            print(
                f"FAIL: sharded concurrency {sharded_top['concurrency']} "
                f"throughput {sharded_top['throughput_rps']} rps below the "
                f"single-process {single_top['throughput_rps']} rps"
            )
            failed = True
        slo_ms = _summarize_slo_seconds() * 1000
        if sharded_top["overall"]["p99_ms"] > slo_ms:
            print(
                f"FAIL: sharded concurrency {sharded_top['concurrency']} "
                f"overall p99 {sharded_top['overall']['p99_ms']:.0f}ms "
                f"exceeds the /summarize SLO default ({slo_ms:.0f}ms)"
            )
            failed = True
    return 1 if failed else 0


def _summarize_slo_seconds():
    from repro.observability.slo import SloPolicy

    return SloPolicy().target("/summarize")


def _format_row(row):
    summarize_p99 = row["ops"].get("summarize", {}).get("p99_ms")
    ingest_p99 = row["ops"].get("ingest", {}).get("p99_ms")
    return (
        f"{row['concurrency']:>4} {row['requests']:>5} "
        f"{row['throughput_rps']:>7.1f} "
        f"{row['overall']['p50_ms']:>7.1f}ms {row['overall']['p99_ms']:>7.1f}ms "
        f"{(summarize_p99 or 0):>8.1f}ms {(ingest_p99 or 0):>9.1f}ms "
        f"{row['conflicts']:>9}"
    )


def _check_rows(rows, label):
    failed = False
    if len(rows) < 2:
        print(f"FAIL: {label}: need at least two concurrency levels")
        failed = True
    for row in rows:
        if row["errors"]:
            print(
                f"FAIL: {label} concurrency {row['concurrency']} saw "
                f"{row['errors']} failed requests: {row['error_samples']}"
            )
            failed = True
        if row["completed"] != row["requests"]:
            print(
                f"FAIL: {label} concurrency {row['concurrency']} completed "
                f"{row['completed']}/{row['requests']} requests"
            )
            failed = True
        if row["overall"]["p99_ms"] > 10000:
            print(
                f"FAIL: {label} concurrency {row['concurrency']} overall p99 "
                f"{row['overall']['p99_ms']:.0f}ms exceeds the 10s sanity bound"
            )
            failed = True
    return failed


def _run_external(base, levels, requests_per_worker, users, movies):
    """Drive an already-running multi-session server (CI smoke against
    ``repro serve --workers N``).  Prints rows, enforces the completion
    floors, and leaves the committed results files untouched."""
    rows = []
    for concurrency in levels:
        row = run_session_level(
            base, concurrency, requests_per_worker, users, movies
        )
        rows.append(row)
        print(_format_row(row))
    return 1 if _check_rows(rows, f"external {base}") else 0


if __name__ == "__main__":
    raise SystemExit(main())
