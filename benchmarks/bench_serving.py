#!/usr/bin/env python
"""Serving-tier latency and throughput under concurrent sessions.

Stands up a real :class:`~repro.prox.server.ProxServer` (loopback,
free port) and drives it with worker threads issuing the PROX request
mix a live deployment sees:

* ``summarize``  (~30%) -- re-run Algorithm 1 (2 steps, streaming
  repair on), the expensive call that holds the session lock;
* ``views``      (~40%) -- ``/summary/groups`` and
  ``/summary/expression`` reads (409 when an ingest just invalidated
  the summary -- counted as conflicts, not failures);
* ``titles``     (~10%) -- the selection view's title list;
* ``ingest``     (~20%) -- one pre-generated MovieLens delta from a
  shared FIFO.  Pop+POST happen under one ingest mutex so deltas land
  in generation order (later deltas may rate movies an earlier delta
  premiered), the same discipline a real upstream stream imposes.

Each concurrency level reports client-observed p50/p99 latency per
operation and overall, plus wall-clock throughput.  Workers draw ops
from per-worker ``random.Random(seed + worker)`` streams, so the
request mix is deterministic; only timings vary run to run.

The JSON mirror lands in ``benchmarks/results/serving.json`` and is
the committed baseline ``benchmarks/check_regression.py`` diffs fresh
runs against (>25% p99 regression fails CI).

Acceptance: every request completes with 2xx (or an expected 409
view conflict), at least two concurrency levels are measured, and
overall p99 stays under 10s per level -- a gross sanity bound (the
session lock serializes summarize, so tail latency grows with
concurrency), not an SLO; the real regression tolerance lives in
``check_regression.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
        [--requests N] [--users N] [--movies N]
"""

from __future__ import annotations

import argparse
import collections
import json
import math
import os
import queue
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.movielens import (  # noqa: E402
    MovieLensConfig,
    MovieLensDeltaConfig,
    generate_movielens,
    generate_movielens_deltas,
)
from repro.prox.server import ProxServer  # noqa: E402
from repro.prox.session import ProxSession  # noqa: E402
from repro.serialization import delta_to_dict  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "serving.txt"
RESULTS_JSON_PATH = Path(__file__).parent / "results" / "serving.json"

#: The request mix: cumulative op weights drawn per worker request.
MIX = (
    ("summarize", 0.30),
    ("groups", 0.25),
    ("expression", 0.15),
    ("titles", 0.10),
    ("ingest", 0.20),
)


def _pick_op(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for op, weight in MIX:
        acc += weight
        if roll < acc:
            return op
    return MIX[-1][0]


def _percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted list (ms)."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


class _Client:
    """Thin urllib client against the benchmark server."""

    def __init__(self, base: str):
        self.base = base

    def get(self, path: str) -> int:
        with urllib.request.urlopen(self.base + path, timeout=60) as resp:
            resp.read()
            return resp.status

    def post(self, path: str, payload: dict) -> int:
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            resp.read()
            return resp.status


def _worker(
    client, deltas, ingest_lock, requests, seed, latencies, counters, errors, lock
):
    rng = random.Random(seed)
    summarize_body = {"number_of_steps": 2, "repair": "auto"}
    for _ in range(requests):
        op = _pick_op(rng)
        started = time.perf_counter()
        conflict = False
        try:
            if op == "summarize":
                client.post("/summarize", summarize_body)
            elif op == "groups":
                client.get("/summary/groups")
            elif op == "expression":
                client.get("/summary/expression")
            elif op == "titles":
                client.get("/titles")
            else:  # ingest
                posted = False
                with ingest_lock:
                    try:
                        delta = deltas.get_nowait()
                    except queue.Empty:
                        pass
                    else:
                        client.post("/ingest", delta)
                        posted = True
                if not posted:
                    op = "titles"  # stream drained: fall back to a read
                    client.get("/titles")
        except urllib.error.HTTPError as error:
            if error.code == 409 and op in ("groups", "expression"):
                conflict = True  # ingest invalidated the summary: expected
            else:
                with lock:
                    errors.append(f"{op}: HTTP {error.code}: {error.reason}")
                continue
        except Exception as error:  # pragma: no cover - network trouble
            with lock:
                errors.append(f"{op}: {type(error).__name__}: {error}")
            continue
        elapsed_ms = (time.perf_counter() - started) * 1e3
        with lock:
            latencies[op].append(elapsed_ms)
            counters["conflicts" if conflict else "ok"] += 1


def _build_server(users, movies, deltas):
    instance = generate_movielens(
        MovieLensConfig(
            n_users=users,
            n_movies=movies,
            min_ratings_per_user=2,
            max_ratings_per_user=3,
            seed=5,
        )
    )
    schedule = generate_movielens_deltas(
        instance,
        MovieLensDeltaConfig(
            n_deltas=deltas,
            min_ratings_per_delta=1,
            max_ratings_per_delta=1,
            new_movie_every=4,
            seed=13,
        ),
    )
    session = ProxSession(instance)
    server = ProxServer(session)
    server.start()
    host, port = server.address
    client = _Client(f"http://{host}:{port}")
    client.post("/select", {"titles": list(session.titles())})
    client.post("/summarize", {"number_of_steps": 2, "repair": "auto"})
    return server, client, [delta_to_dict(delta) for delta in schedule]


def run_level(concurrency, requests_per_worker, users, movies, seed=0):
    """One concurrency level against a fresh server; returns its row."""
    total_requests = concurrency * requests_per_worker
    # Enough deltas that the drain fallback stays rare at the expected
    # ingest share of the mix.
    server, client, encoded = _build_server(
        users, movies, deltas=max(4, int(total_requests * 0.3))
    )
    deltas: "queue.Queue[dict]" = queue.Queue()
    for delta in encoded:
        deltas.put(delta)

    latencies = collections.defaultdict(list)
    counters = collections.Counter()
    errors: list = []
    lock = threading.Lock()
    ingest_lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                client,
                deltas,
                ingest_lock,
                requests_per_worker,
                seed + worker,
                latencies,
                counters,
                errors,
                lock,
            ),
            name=f"bench-worker-{worker}",
        )
        for worker in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    server.stop()

    all_ms = sorted(ms for values in latencies.values() for ms in values)
    ops = {}
    for op in sorted(latencies):
        values = sorted(latencies[op])
        ops[op] = {
            "count": len(values),
            "p50_ms": round(_percentile(values, 0.50), 3),
            "p99_ms": round(_percentile(values, 0.99), 3),
        }
    completed = len(all_ms)
    return {
        "concurrency": concurrency,
        "requests": total_requests,
        "completed": completed,
        "conflicts": counters["conflicts"],
        "errors": len(errors),
        "error_samples": errors[:5],
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(completed / wall, 2) if wall else None,
        "overall": {
            "p50_ms": round(_percentile(all_ms, 0.50), 3),
            "p99_ms": round(_percentile(all_ms, 0.99), 3),
        },
        "ops": ops,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI smoke: small instance, fewer requests"
    )
    parser.add_argument(
        "--requests", type=int, default=0, help="requests per worker (0 = default)"
    )
    parser.add_argument("--users", type=int, default=80)
    parser.add_argument("--movies", type=int, default=300)
    args = parser.parse_args(argv)

    if args.smoke:
        users, movies = 40, 120
        levels = (2, 4)
        requests_per_worker = args.requests or 8
    else:
        users, movies = args.users, args.movies
        levels = (2, 8)
        requests_per_worker = args.requests or 25

    rows = [
        run_level(concurrency, requests_per_worker, users, movies)
        for concurrency in levels
    ]

    lines = [
        f"instance: movielens n_users={users} n_movies={movies} "
        f"requests_per_worker={requests_per_worker} cores={os.cpu_count()}",
        f"mix: {' '.join(f'{op}={weight:.0%}' for op, weight in MIX)}",
        "",
        f"{'conc':>4} {'reqs':>5} {'rps':>7} {'p50':>9} {'p99':>9} "
        f"{'summ p99':>10} {'ingest p99':>11} {'conflicts':>9}",
    ]
    for row in rows:
        summarize_p99 = row["ops"].get("summarize", {}).get("p99_ms")
        ingest_p99 = row["ops"].get("ingest", {}).get("p99_ms")
        lines.append(
            f"{row['concurrency']:>4} {row['requests']:>5} "
            f"{row['throughput_rps']:>7.1f} "
            f"{row['overall']['p50_ms']:>7.1f}ms {row['overall']['p99_ms']:>7.1f}ms "
            f"{(summarize_p99 or 0):>8.1f}ms {(ingest_p99 or 0):>9.1f}ms "
            f"{row['conflicts']:>9}"
        )
    body = "\n".join(lines)
    print(body)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(body + "\n")
    print(f"\nwritten to {RESULTS_PATH}")

    payload = {
        "benchmark": "serving",
        "quick": args.smoke,
        "instance": {
            "dataset": "movielens",
            "n_users": users,
            "n_movies": movies,
            "requests_per_worker": requests_per_worker,
            "levels": list(levels),
            "cores": os.cpu_count(),
        },
        "levels": rows,
    }
    RESULTS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {RESULTS_JSON_PATH}")

    failed = False
    if len(rows) < 2:
        print("FAIL: need at least two concurrency levels")
        failed = True
    for row in rows:
        if row["errors"]:
            print(
                f"FAIL: concurrency {row['concurrency']} saw "
                f"{row['errors']} failed requests: {row['error_samples']}"
            )
            failed = True
        if row["completed"] != row["requests"]:
            print(
                f"FAIL: concurrency {row['concurrency']} completed "
                f"{row['completed']}/{row['requests']} requests"
            )
            failed = True
        if row["overall"]["p99_ms"] > 10000:
            print(
                f"FAIL: concurrency {row['concurrency']} overall p99 "
                f"{row['overall']['p99_ms']:.0f}ms exceeds the 10s sanity bound"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
