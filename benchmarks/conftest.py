"""Shared infrastructure for the figure-regeneration benchmarks.

Each ``bench_fig_*.py`` regenerates one figure of Chapter 6: it runs
the experiment harness at laptop scale, prints the same series the
thesis plots, verifies the figure's *shape* (who wins, which way the
curves move) and records everything under ``benchmarks/results/`` so
EXPERIMENTS.md can be assembled from actual runs.

Experiments that share runs (Figs 6.1a and 6.2a are two views of the
same wDist sweep) share session-scoped fixtures, so the whole bench
suite stays fast.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

import pytest

from repro.experiments import (
    BENCH_WDIST_GRID,
    DEFAULT_SEEDS,
    MAX_STEPS,
    ddp_spec,
    movielens_spec,
    wdist_experiment,
    wikipedia_spec,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Reduced seed set for the slowest sweeps.
FAST_SEEDS = DEFAULT_SEEDS[:2]


def emit(figure: str, title: str, body: str) -> None:
    """Print a figure's regenerated series and persist it."""
    banner = f"=== {figure}: {title} ==="
    text = f"{banner}\n{body}\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure}.txt"
    path.write_text(text)


@pytest.fixture(scope="session")
def movielens_wdist_rows():
    """The Fig 6.1a / 6.2a sweep: one run shared by both figures."""
    return wdist_experiment(
        movielens_spec(),
        seeds=DEFAULT_SEEDS,
        wdist_grid=BENCH_WDIST_GRID,
        max_steps=MAX_STEPS["movielens"],
    )


@pytest.fixture(scope="session")
def wikipedia_wdist_rows():
    """The Fig 6.6a / 6.7a sweep."""
    return wdist_experiment(
        wikipedia_spec(),
        seeds=DEFAULT_SEEDS,
        wdist_grid=BENCH_WDIST_GRID,
        max_steps=MAX_STEPS["wikipedia"],
    )


@pytest.fixture(scope="session")
def ddp_wdist_rows():
    """The Fig 6.8a / 6.9a sweep (no Clustering, §6.1)."""
    return wdist_experiment(
        ddp_spec(),
        seeds=DEFAULT_SEEDS,
        wdist_grid=BENCH_WDIST_GRID,
        max_steps=MAX_STEPS["ddp"],
    )
