#!/usr/bin/env python
"""Bit-packed shared-batch sampled scoring vs. the reference sampler.

Scores one greedy step's candidate set on MovieLens-style provenance
with enumeration disabled (``max_enumerate=0``), so every distance is
a Prop 4.1.2 Monte-Carlo estimate, under two engine configurations:

* ``reference`` -- ``sample_sharing=off``: the seed behavior; every
  candidate redraws its own valuation batch and evaluates both
  expressions per draw (the naive path through
  :meth:`~repro.core.distance.DistanceComputer.sampled`);
* ``packed``    -- ``sample_sharing=auto``: one shared batch per step,
  dead bits packed across the batch, candidates re-fold only their
  merged-part terms (:class:`~repro.core.sampled_scoring
  .SampledStepScorer`).

The table reports the wall-clock of the step measurement and the
speedup per batch size; the JSON mirror lands in
``benchmarks/results/sampled_scoring.json`` (uploaded as a CI
artifact).  The headline acceptance number: at batch sizes >= 256 the
packed kernel must be at least 5x faster than the reference sampler.

When the numpy kernel backend is active (``REPRO_KERNEL`` auto/numpy
with numpy importable), every row also times the packed step under the
pure-python reference kernels: the ``kernel-speedup`` column isolates
the vectorization win from the batch-sharing win.

``--quick`` (alias ``--smoke``) runs a small instance (CI smoke): it
asserts the packed path actually engaged (scoring path, batch
telemetry) and skips the speedup expectation.  Estimate *correctness*
is not re-proven here -- ``tests/core/test_sampled_scoring.py`` pins
seed-matched bit-identity against the reference sampler, and
``tests/core/test_kernels.py`` pins kernel bit-identity.

Usage::

    PYTHONPATH=src python benchmarks/bench_sampled_scoring.py [--quick]
        [--seed N] [--users N] [--movies N] [--candidates N]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (  # noqa: E402
    DistanceComputer,
    MappingState,
    ScoringEngine,
    SummarizationConfig,
    enumerate_candidates,
    kernels,
)
from repro.datasets import MovieLensConfig, generate_movielens  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "sampled_scoring.txt"
RESULTS_JSON_PATH = Path(__file__).parent / "results" / "sampled_scoring.json"


def build_problem(n_users: int, n_movies: int, seed: int = 0):
    """MovieLens-style provenance; the cancel-one-annotation class
    cancels one user each, so its size tracks ``n_users`` (and the
    ``16 x |V|`` budget clamp with it -- 64 users admit the 1024
    batch)."""
    return generate_movielens(
        MovieLensConfig(
            n_users=n_users,
            n_movies=n_movies,
            min_ratings_per_user=3,
            max_ratings_per_user=5,
            valuation_class="annotation",
            seed=seed,
        )
    ).problem()


def measure_best(repeats, problem, candidates, batch, seed, **knobs):
    """Best-of-``repeats`` wall-clock of a step measurement.

    Single-digit-millisecond steps on a shared single core are noisy;
    the minimum over a few repeats is the standard stable estimator
    (the same policy as ``bench_mask_build.time_best``)."""
    engine, seconds = None, None
    for _ in range(repeats):
        engine, _, elapsed = measure_step(
            problem, candidates, batch, seed, **knobs
        )
        seconds = elapsed if seconds is None else min(seconds, elapsed)
    return engine, seconds


def measure_step(problem, candidates, batch, seed, **knobs):
    """Wall-clock of one full step measurement (scorer construction --
    batch drawing, mask packing -- included, unlike the engine's own
    scoring-seconds telemetry)."""
    config = SummarizationConfig(
        max_enumerate=0, distance_samples=batch, seed=seed, **knobs
    )
    computer = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
        max_enumerate=0,
        n_samples=batch,
        rng=random.Random(seed),
    )
    engine = ScoringEngine(problem, config, computer)
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    started = time.perf_counter()
    measured, _ = engine.measure(candidates, current, mapping)
    elapsed = time.perf_counter() - started
    return engine, measured, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", "--smoke", dest="quick", action="store_true",
        help="CI smoke: small instance",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="instance-generation and sampling RNG seed",
    )
    parser.add_argument("--users", type=int, default=64)
    parser.add_argument("--movies", type=int, default=60)
    parser.add_argument(
        "--candidates", type=int, default=300,
        help="candidate pairs scored per configuration",
    )
    args = parser.parse_args(argv)

    if args.quick:
        # Batch 256 rides along so the kernel-speedup floor in
        # check_regression.py has a >= 256 row to look at.
        n_users, n_movies, n_candidates, batches = 24, 30, 40, [64, 256]
    else:
        n_users, n_movies, n_candidates = args.users, args.movies, args.candidates
        batches = [64, 256, 1024]

    problem = build_problem(n_users, n_movies, seed=args.seed)
    candidates = enumerate_candidates(
        problem.expression, problem.universe, problem.constraint
    )[:n_candidates]
    if not candidates:
        print("FAIL: the instance produced no candidates")
        return 1

    rows = []
    # The reference run costs seconds per measurement (stable); the
    # packed runs cost tens of milliseconds and need best-of to beat
    # scheduler noise.
    packed_repeats = 1 if args.quick else 3
    for batch in batches:
        ref_engine, ref_seconds = measure_best(
            1 if args.quick else 2,
            problem, candidates, batch, args.seed, sample_sharing="off",
        )
        packed_engine, packed_seconds = measure_best(
            packed_repeats, problem, candidates, batch, args.seed
        )
        if ref_engine.last_path != ScoringEngine.PATH_NAIVE:
            print(
                f"FAIL: reference mode took path {ref_engine.last_path!r}, "
                "expected 'naive'"
            )
            return 1
        if packed_engine.last_path != ScoringEngine.PATH_SAMPLED_INCREMENTAL:
            print(
                f"FAIL: packed mode took path {packed_engine.last_path!r}, "
                "the sampled kernel never engaged"
            )
            return 1
        if packed_engine.last_sample_batch != batch:
            print(
                f"FAIL: packed batch telemetry {packed_engine.last_sample_batch} "
                f"!= requested {batch} (budget clamp? raise --users)"
            )
            return 1
        row = {
            "batch": batch,
            "candidates": len(candidates),
            "reference_seconds": ref_seconds,
            "packed_seconds": packed_seconds,
            "speedup": ref_seconds / packed_seconds if packed_seconds else None,
            "packed_batch_variance": packed_engine.last_sample_variance,
            "kernel": packed_engine.last_kernel,
        }
        if kernels.active_backend() in (kernels.MODE_NUMPY, kernels.MODE_NATIVE):
            # The same packed step under the pure-python reference
            # kernels: the acceleration win in isolation.
            with kernels.backend(kernels.MODE_PYTHON):
                _, python_seconds = measure_best(
                    packed_repeats, problem, candidates, batch, args.seed
                )
            row["kernel_python_seconds"] = python_seconds
            row["kernel_speedup"] = (
                python_seconds / packed_seconds if packed_seconds else None
            )
        rows.append(row)

    lines = [
        f"instance: movielens n_users={n_users} n_movies={n_movies} "
        f"candidates={len(candidates)} seed={args.seed} cores={os.cpu_count()} "
        f"kernel={kernels.active_backend()}",
        "",
        f"{'batch':>6} {'reference(s)':>13} {'packed(s)':>10} {'speedup':>9} "
        f"{'kernel-speedup':>14}",
    ]
    for row in rows:
        kernel_speedup = row.get("kernel_speedup")
        kernel_cell = (
            f"{kernel_speedup:>13.1f}x" if kernel_speedup else f"{'-':>14}"
        )
        lines.append(
            f"{row['batch']:>6} {row['reference_seconds']:>13.3f} "
            f"{row['packed_seconds']:>10.3f} {row['speedup']:>8.1f}x "
            f"{kernel_cell}"
        )
    lines.append("")
    lines.append(
        "estimates are seed-matched bit-identical to the reference sampler "
        "(tests/core/test_sampled_scoring.py)"
    )
    body = "\n".join(lines)
    print(body)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(body + "\n")
    print(f"\nwritten to {RESULTS_PATH}")

    payload = {
        "benchmark": "sampled_scoring",
        "quick": args.quick,
        "kernel": kernels.active_backend(),
        "instance": {
            "dataset": "movielens",
            "n_users": n_users,
            "n_movies": n_movies,
            "candidates": len(candidates),
            "seed": args.seed,
            "cores": os.cpu_count(),
        },
        "rows": rows,
    }
    RESULTS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {RESULTS_JSON_PATH}")

    if not args.quick:
        for row in rows:
            if row["batch"] >= 256 and (row["speedup"] or 0.0) < 5.0:
                print(
                    f"FAIL: speedup {row['speedup']:.1f}x at batch "
                    f"{row['batch']} < 5x acceptance target"
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
