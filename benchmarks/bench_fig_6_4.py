"""Figure 6.4 -- usage-time ratio (summary vs original evaluation).

Ten random valuations are evaluated on both expressions; the ratio of
wall-clock evaluation times is below 1 (summaries evaluate faster) and
smaller with more algorithm steps (§6.8).  Prov-Approx's ratio grows
with wDist (less size reduction); baselines are wDist-independent.
"""

from repro.experiments import (
    check_shapes,
    format_rows,
    mean_of,
    movielens_spec,
    series,
    usage_time_experiment,
)

from conftest import FAST_SEEDS, emit

WDIST_GRID = (0.0, 0.5, 1.0)


def test_fig_6_4_usage_time(benchmark):
    rows = benchmark.pedantic(
        lambda: usage_time_experiment(
            movielens_spec(),
            seeds=FAST_SEEDS,
            wdist_grid=WDIST_GRID,
            steps_grid=(20, 30),
            n_valuations=10,
        ),
        rounds=1,
        iterations=1,
    )
    prov_mean = {
        steps: mean_of(
            rows, "avg_usage_ratio", {"algorithm": "prov-approx", "max_steps": steps}
        )
        for steps in (20, 30)
    }
    checks = [
        (
            "summaries evaluate faster than the original (ratio < 1)",
            all(
                row["avg_usage_ratio"] < 1.0
                for row in rows
                if row["algorithm"] == "prov-approx"
            ),
        ),
        (
            "more steps give a smaller (better) ratio",
            prov_mean[30] <= prov_mean[20] + 0.05,
        ),
        (
            "Clustering's ratio exceeds Prov-Approx's (less reduction)",
            mean_of(rows, "avg_usage_ratio", {"algorithm": "clustering"})
            >= prov_mean[30] - 0.05,
        ),
    ]
    emit(
        "fig_6_4",
        "MovieLens usage-time ratio vs wDist (20 / 30 steps)",
        format_rows(rows, ("algorithm", "max_steps", "w_dist", "avg_usage_ratio"))
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
