#!/usr/bin/env python
"""Perf-regression gate: diff fresh benchmark JSONs against baselines.

Compares the committed ``benchmarks/results/*.json`` baselines with a
fresh run of the same benchmarks and fails (exit 1) when a headline
metric regressed beyond tolerance.  Wired into CI after the benchmark
smoke steps::

    cp -r benchmarks/results /tmp/committed-results
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
    ...
    python benchmarks/check_regression.py \
        --baseline /tmp/committed-results --fresh benchmarks/results

Two comparison regimes, chosen per family by *config fingerprint*
(the ``quick`` flag plus the ``instance`` block, minus ``cores``):

* **Fingerprints match** (same machine shape, same workload): every
  direction-tagged headline metric is diffed; a higher-is-better
  metric dropping -- or a lower-is-better metric rising -- by more
  than ``--tolerance`` (default 25%) is a regression.
* **Fingerprints differ** (e.g. CI smoke run vs the committed full
  run): ratios are meaningless, so the family's *floor* invariants
  are asserted instead -- the properties any healthy run must have
  regardless of scale (speedups > 1, no serving errors, nonzero
  invalidation on adversarial schedules).

Families: parallel_scoring, sampled_scoring, mask_build,
candidate_carry, streaming_ingest, serving.  A family missing on
either side is reported and skipped (CI only re-runs a subset).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: family -> (json filename, [(path, direction), ...]) where ``path``
#: walks the payload (list segments iterate) and ``direction`` is
#: "higher" or "lower" (better).
FAMILIES = {
    "parallel_scoring": (
        "parallel_scoring.json",
        [(("modes", "speedup_vs_seed"), "higher")],
    ),
    "sampled_scoring": (
        "sampled_scoring.json",
        [
            (("rows", "speedup"), "higher"),
            (("rows", "kernel_speedup"), "higher"),
        ],
    ),
    "mask_build": (
        "mask_build.json",
        [(("rows", "speedup"), "higher")],
    ),
    "candidate_carry": (
        "candidate_carry.json",
        [
            (("modes", "rescore_reduction_vs_seed"), "higher"),
            (("modes", "steps_per_second"), "higher"),
        ],
    ),
    "streaming_ingest": (
        "streaming_ingest.json",
        [
            (("schedules", "speedup"), "higher"),
            (("schedules", "ingest_deltas_per_second"), "higher"),
        ],
    ),
    "serving": (
        "serving.json",
        [
            (("levels", "overall", "p99_ms"), "lower"),
            (("levels", "throughput_rps"), "higher"),
        ],
    ),
}


def _fingerprint(payload):
    """The workload identity two runs must share to be ratio-comparable.

    The kernel backend is part of the identity: a numpy run diffed
    against a committed native baseline (or vice versa) would report
    the backend gap as a regression.
    """
    instance = dict(payload.get("instance", {}))
    instance.pop("cores", None)
    return (
        payload.get("quick"),
        payload.get("kernel"),
        tuple(sorted(instance.items())),
    )


def _extract(payload, path, label=""):
    """Yield ``(label, value)`` for every leaf the path reaches."""
    head, rest = path[0], path[1:]
    node = payload.get(head) if isinstance(payload, dict) else None
    if node is None:
        return
    if isinstance(node, list):
        for index, entry in enumerate(node):
            key = entry.get("mode") or entry.get("schedule") or \
                entry.get("concurrency") or entry.get("batch") or index
            tag = f"{label}{head}[{key}]"
            if rest:
                yield from _extract(entry, rest, tag + ".")
            elif isinstance(entry, (int, float)):
                yield tag, float(entry)
    elif rest:
        yield from _extract(node, rest, f"{label}{head}.")
    elif isinstance(node, (int, float)):
        yield f"{label}{head}", float(node)


def _diff_family(name, metrics, baseline, fresh, tolerance):
    """Fingerprints matched: ratio-compare every headline metric."""
    failures = []
    checked = 0
    for path, direction in metrics:
        base_values = dict(_extract(baseline, path))
        fresh_values = dict(_extract(fresh, path))
        for label, base in base_values.items():
            new = fresh_values.get(label)
            if new is None or base == 0:
                continue
            checked += 1
            change = (new - base) / base
            regressed = (
                change < -tolerance
                if direction == "higher"
                else change > tolerance
            )
            if regressed:
                failures.append(
                    f"{name}: {label} ({direction} is better) "
                    f"{base:.3f} -> {new:.3f} ({change:+.0%}, "
                    f"tolerance ±{tolerance:.0%})"
                )
    return checked, failures


def _floors_family(name, fresh):
    """Fingerprints differed: assert scale-free health invariants."""
    failures = []
    if name == "parallel_scoring":
        speedups = [m.get("speedup_vs_seed", 0) for m in fresh.get("modes", [])]
        if not any(s > 1.0 for s in speedups[1:]):
            failures.append(
                f"{name}: no optimized mode beat the seed "
                f"(speedups {speedups})"
            )
    elif name == "sampled_scoring":
        for row in fresh.get("rows", []):
            if row.get("speedup", 0) <= 1.0:
                failures.append(
                    f"{name}: batch {row.get('batch')} packed scoring "
                    f"did not beat the reference ({row.get('speedup')}x)"
                )
            # The accelerated kernels (numpy or native) must deliver a
            # real win over the pure-python reference at vector-friendly
            # batch sizes (at small batches construction dominates, so
            # no floor there).  Both backends clear 2x at batch 256 even
            # on the quick instance; 1.25 leaves noise headroom.
            kernel_speedup = row.get("kernel_speedup")
            if (
                kernel_speedup is not None
                and row.get("batch", 0) >= 256
                and kernel_speedup <= 1.25
            ):
                failures.append(
                    f"{name}: batch {row.get('batch')} accelerated "
                    f"kernels did not beat the python reference "
                    f"({kernel_speedup}x, floor 1.25x)"
                )
    elif name == "mask_build":
        # Mirrors the bench's own full-mode gate: once rows are wide
        # enough that scatter work dominates interpreter overhead, the
        # packed build must not lose to the seed bigint loop.  Quick
        # runs stop below 4096 valuations, so the floor is vacuous
        # there (the bench's bit-identity tripwire still ran).
        for row in fresh.get("rows", []):
            if row.get("n_vals", 0) >= 4096 and row.get("speedup", 0) < 1.0:
                failures.append(
                    f"{name}: n_vals {row.get('n_vals')} packed build "
                    f"slower than the bigint loop ({row.get('speedup')}x)"
                )
    elif name == "candidate_carry":
        for mode in fresh.get("modes", []):
            if mode["mode"] == "seed":
                continue
            if mode.get("rescore_reduction_vs_seed", 0) < 1.0:
                failures.append(
                    f"{name}: mode {mode['mode']} rescored more than seed"
                )
    elif name == "streaming_ingest":
        for schedule in fresh.get("schedules", []):
            if schedule.get("speedup", 0) <= 1.0:
                failures.append(
                    f"{name}: schedule {schedule['schedule']} repair did "
                    f"not beat recompute ({schedule.get('speedup')}x)"
                )
            if (
                schedule["schedule"] == "classmerge"
                and schedule.get("invalidated", 0) <= 0
            ):
                failures.append(
                    f"{name}: classmerge schedule invalidated nothing"
                )
    elif name == "serving":
        levels = fresh.get("levels", [])
        if len(levels) < 2:
            failures.append(f"{name}: fewer than two concurrency levels")
        for level in levels:
            if level.get("errors", 0):
                failures.append(
                    f"{name}: concurrency {level.get('concurrency')} saw "
                    f"{level['errors']} failed requests"
                )
            if level.get("completed") != level.get("requests"):
                failures.append(
                    f"{name}: concurrency {level.get('concurrency')} lost "
                    f"requests ({level.get('completed')}/"
                    f"{level.get('requests')})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).parent / "results",
        help="directory of baseline JSONs (default: committed results)",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True, help="directory of fresh JSONs"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression when fingerprints match",
    )
    args = parser.parse_args(argv)

    failures = []
    for name, (filename, metrics) in sorted(FAMILIES.items()):
        base_path = args.baseline / filename
        fresh_path = args.fresh / filename
        if not base_path.exists() or not fresh_path.exists():
            missing = "baseline" if not base_path.exists() else "fresh"
            print(f"SKIP {name}: no {missing} JSON")
            continue
        baseline = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        if _fingerprint(baseline) == _fingerprint(fresh):
            checked, family_failures = _diff_family(
                name, metrics, baseline, fresh, args.tolerance
            )
            verdict = "FAIL" if family_failures else "OK"
            print(
                f"{verdict} {name}: fingerprints match, "
                f"{checked} metrics diffed at ±{args.tolerance:.0%}"
            )
        else:
            family_failures = _floors_family(name, fresh)
            verdict = "FAIL" if family_failures else "OK"
            print(
                f"{verdict} {name}: fingerprints differ "
                f"(e.g. smoke vs full) -- floor invariants asserted"
            )
        failures.extend(family_failures)

    if failures:
        print("\nregressions detected:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nno regressions detected")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
