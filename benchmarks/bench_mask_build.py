#!/usr/bin/env python
"""Packed ``MaskTable`` construction vs. the seed bigint mask build.

The seed scorers built per-annotation false masks as unbounded python
ints: for every falsifying valuation, ``mask[key] |= 1 << index`` --
quadratic bit-shuffling once batches reach hundreds of draws, and the
single hottest slice of sampled-scorer construction.  The packed
representation gathers the same false sets and hands them to the
kernel's ``scatter_false_sets``, which writes ``array('Q')`` word rows
into one contiguous table.

This benchmark times the two constructions on identical false-set
inputs (the gather itself -- python-side combiner walks -- is shared
and excluded, so the ratio isolates the representation change), across
batch sizes and annotation counts.  The JSON mirror lands in
``benchmarks/results/mask_build.json`` and feeds the perf gate
(``check_regression.py``): packed construction must beat the bigint
build at vector-scale batches.

Usage::

    PYTHONPATH=src python benchmarks/bench_mask_build.py [--quick]
        [--seed N] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import kernels  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "mask_build.txt"
RESULTS_JSON_PATH = Path(__file__).parent / "results" / "mask_build.json"


def false_entries(n_rows: int, n_vals: int, seed: int):
    """Synthetic per-valuation false sets shaped like scorer input.

    Each valuation falsifies a small handful of annotations (the
    cancel-one classes falsify one; lifted guard semantics a few), so
    rows-per-entry stays small while entries track the batch size.
    """
    rng = random.Random(seed)
    entries = []
    for index in range(n_vals):
        rows = rng.sample(range(n_rows), rng.choice([1, 1, 2, 3]))
        entries.append((rows, (index,)))
    return entries


def bigint_build(n_rows: int, entries, n_vals: int):
    """The seed construction: ``mask[row] |= 1 << index`` bigints."""
    masks = [0] * n_rows
    for rows, positions in entries:
        for position in positions:
            bit = 1 << position
            for row in rows:
                masks[row] |= bit
    return masks


def time_best(repeats: int, build):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = build()
        best = min(best, time.perf_counter() - started)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", "--smoke", dest="quick", action="store_true",
        help="CI smoke: fewer sizes and repeats",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=0,
        help="timing repeats per size (0 = auto: 5 full, 3 quick)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes = [(64, 256), (64, 1024)]
    else:
        sizes = [(64, 256), (64, 1024), (128, 4096), (256, 16384)]
    repeats = args.repeats or (3 if args.quick else 5)

    backend = kernels.get_backend()
    rows = []
    for n_rows, n_vals in sizes:
        entries = false_entries(n_rows, n_vals, args.seed)
        bigint_seconds, big_masks = time_best(
            repeats, lambda: bigint_build(n_rows, entries, n_vals)
        )
        packed_seconds, table = time_best(
            repeats,
            lambda: backend.scatter_false_sets(n_rows, entries, n_vals),
        )
        # Representation equivalence, asserted on every sizing (the
        # hypothesis suite proves it exhaustively; this is a tripwire).
        if table.row_ints() != big_masks:
            print(f"FAIL: packed rows != bigint masks at {n_rows}x{n_vals}")
            return 1
        rows.append(
            {
                "n_rows": n_rows,
                "n_vals": n_vals,
                "bigint_seconds": bigint_seconds,
                "packed_seconds": packed_seconds,
                "speedup": (
                    bigint_seconds / packed_seconds if packed_seconds else None
                ),
            }
        )

    lines = [
        f"instance: synthetic false-set scatter seed={args.seed} "
        f"repeats={repeats} cores={os.cpu_count()} "
        f"kernel={kernels.active_backend()}",
        "",
        f"{'rows':>6} {'n_vals':>7} {'bigint(s)':>11} {'packed(s)':>11} "
        f"{'speedup':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['n_rows']:>6} {row['n_vals']:>7} "
            f"{row['bigint_seconds']:>11.6f} {row['packed_seconds']:>11.6f} "
            f"{row['speedup']:>8.1f}x"
        )
    lines.append("")
    lines.append(
        "rows are asserted bit-identical between the two constructions "
        "(tests/core/test_mask_table.py proves the property)"
    )
    body = "\n".join(lines)
    print(body)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(body + "\n")
    print(f"\nwritten to {RESULTS_PATH}")

    payload = {
        "benchmark": "mask_build",
        "quick": args.quick,
        "kernel": kernels.active_backend(),
        "instance": {
            "workload": "synthetic-false-set-scatter",
            "seed": args.seed,
            "repeats": repeats,
            "cores": os.cpu_count(),
        },
        "rows": rows,
    }
    RESULTS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {RESULTS_JSON_PATH}")

    if not args.quick:
        for row in rows:
            if row["n_vals"] >= 4096 and (row["speedup"] or 0.0) < 1.0:
                print(
                    f"FAIL: packed scatter {row['speedup']:.2f}x at "
                    f"n_vals {row['n_vals']} -- slower than the bigint build"
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
