#!/usr/bin/env python
"""Streaming ingest throughput and summary repair vs. recompute.

Drives the streaming loop end to end: one session selects a MovieLens
instance, summarizes it, then ingests a schedule of provenance deltas
(:func:`~repro.datasets.movielens.generate_movielens_deltas`),
re-summarizing after every delta.  Two schedules run:

* ``append``  -- append-only ratings plus periodic new movies, the
  regime the repair checkpoint targets (the previous run's labels stay
  a positional prefix of the next run's).  The headline number is the
  repair-vs-recompute speedup over the whole 10-delta schedule:
  ``repair="on"`` seeds every re-summarization's step 0 from the
  previous run's measurements, ``repair="off"`` recomputes from
  scratch.  Both produce bit-identical summaries (asserted here and in
  ``tests/core/test_streaming_repair.py``).
* ``classmerge`` -- the adversarial variant: spam-flag deltas extend
  valuation false sets, merging previously-distinct equivalence
  classes, so carried pool entries mentioning the replaced summary
  annotations are invalidated and re-proposed.  The reported
  ``invalidated`` count mirrors ``prox_repair_invalidated_total`` and
  must be nonzero.

The table also reports raw ingest throughput (deltas/sec over
``ProxSession.ingest`` alone, no re-summarization).  Timings are
best-of-``--trials`` ``time.process_time`` (the repair-vs-recompute
ratio is CPU work, not I/O).  The JSON mirror lands in
``benchmarks/results/streaming_ingest.json`` (uploaded as a CI
artifact).

Acceptance (full mode): the append schedule's repair speedup must be
>= 3x over 10 deltas.  ``--quick`` runs a small spam-flagged instance
(CI smoke): repair must beat recompute, summaries must match, and the
invalidated count must be nonzero.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py [--quick]
        [--trials N] [--users N] [--movies N] [--steps N] [--deltas N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.movielens import (  # noqa: E402
    MovieLensConfig,
    MovieLensDeltaConfig,
    generate_movielens,
    generate_movielens_deltas,
)
from repro.prox.session import ProxSession  # noqa: E402
from repro.prox.summarization import SummarizationRequest  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "streaming_ingest.txt"
RESULTS_JSON_PATH = Path(__file__).parent / "results" / "streaming_ingest.json"


def build(users, movies, deltas, spam_every):
    """Instance plus delta schedule (seeds pinned for reproducibility)."""
    instance = generate_movielens(
        MovieLensConfig(
            n_users=users,
            n_movies=movies,
            min_ratings_per_user=2,
            max_ratings_per_user=3,
            seed=5,
        )
    )
    schedule = generate_movielens_deltas(
        instance,
        MovieLensDeltaConfig(
            n_deltas=deltas,
            min_ratings_per_delta=1,
            max_ratings_per_delta=1,
            new_movie_every=4,
            spam_flag_every=spam_every,
            seed=13,
        ),
    )
    return instance, schedule


def run_schedule(users, movies, steps, deltas, spam_every, repair):
    """One full streaming loop; returns timings, counters and summaries.

    The clock covers ingest + re-summarization over the whole schedule
    -- the latency a live session actually observes per arriving delta.
    """
    instance, schedule = build(users, movies, deltas, spam_every)
    request = SummarizationRequest(number_of_steps=steps, repair=repair)
    session = ProxSession(instance)
    session.select_titles(list(session.titles()))
    session.summarize(request)
    invalidated = seeded = 0
    summaries = []
    started = time.process_time()
    for delta in schedule:
        session.ingest(delta)
        result = session.summarize(request)
        invalidated += result.repair_invalidated
        seeded += result.repair_seeded
        summaries.append(tuple(result.summary_expression.terms))
    elapsed = time.process_time() - started
    return elapsed, invalidated, seeded, summaries


def ingest_throughput(users, movies, deltas, spam_every):
    """Deltas/sec through ``ProxSession.ingest`` alone."""
    instance, schedule = build(users, movies, deltas, spam_every)
    session = ProxSession(instance)
    session.select_titles(list(session.titles()))
    started = time.process_time()
    for delta in schedule:
        session.ingest(delta)
    elapsed = time.process_time() - started
    return len(schedule) / elapsed if elapsed else float("inf")


def bench_schedule(label, users, movies, steps, deltas, spam_every, trials):
    repair_best = None
    recompute_best = None
    invalidated = seeded = 0
    for _ in range(trials):
        elapsed, inval, seed_count, repaired = run_schedule(
            users, movies, steps, deltas, spam_every, "on"
        )
        if repair_best is None or elapsed < repair_best:
            repair_best = elapsed
            invalidated, seeded = inval, seed_count
        elapsed, _, _, recomputed = run_schedule(
            users, movies, steps, deltas, spam_every, "off"
        )
        if recompute_best is None or elapsed < recompute_best:
            recompute_best = elapsed
        if repaired != recomputed:
            raise AssertionError(
                f"{label}: repaired summaries diverged from recompute"
            )
    return {
        "schedule": label,
        "n_deltas": deltas,
        "spam_flag_every": spam_every,
        "repair_seconds": repair_best,
        "recompute_seconds": recompute_best,
        "speedup": recompute_best / repair_best if repair_best else None,
        "invalidated": invalidated,
        "seeded": seeded,
        "ingest_deltas_per_second": ingest_throughput(
            users, movies, deltas, spam_every
        ),
        "identical_summaries": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small instance")
    parser.add_argument("--trials", type=int, default=3, help="best-of-N timing trials")
    parser.add_argument("--users", type=int, default=100)
    parser.add_argument("--movies", type=int, default=400)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--deltas", type=int, default=10)
    args = parser.parse_args(argv)

    if args.quick:
        users, movies, steps, deltas = 56, 200, 2, 6
        schedules = [("classmerge", 3)]
        trials = 1
    else:
        users, movies, steps, deltas = args.users, args.movies, args.steps, args.deltas
        schedules = [("append", 0), ("classmerge", 5)]
        trials = args.trials

    rows = [
        bench_schedule(label, users, movies, steps, deltas, spam_every, trials)
        for label, spam_every in schedules
    ]

    lines = [
        f"instance: movielens n_users={users} n_movies={movies} "
        f"steps={steps} deltas={deltas} trials={trials} cores={os.cpu_count()}",
        "",
        f"{'schedule':<11} {'repair':>8} {'recomp':>8} {'speedup':>8} "
        f"{'invalidated':>12} {'seeded':>8} {'ingest/s':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['schedule']:<11} {row['repair_seconds']:>7.2f}s "
            f"{row['recompute_seconds']:>7.2f}s {row['speedup']:>7.2f}x "
            f"{row['invalidated']:>12} {row['seeded']:>8} "
            f"{row['ingest_deltas_per_second']:>9.0f}"
        )
    lines.append("")
    lines.append("repaired and recomputed summaries identical on every schedule")
    body = "\n".join(lines)
    print(body)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(body + "\n")
    print(f"\nwritten to {RESULTS_PATH}")

    payload = {
        "benchmark": "streaming_ingest",
        "quick": args.quick,
        "instance": {
            "dataset": "movielens",
            "n_users": users,
            "n_movies": movies,
            "steps": steps,
            "deltas": deltas,
            "trials": trials,
            "cores": os.cpu_count(),
        },
        "schedules": rows,
    }
    RESULTS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {RESULTS_JSON_PATH}")

    adversarial = next(r for r in rows if r["schedule"] == "classmerge")
    if adversarial["invalidated"] <= 0:
        print("FAIL: the class-merge schedule never invalidated a pool entry")
        return 1
    if adversarial["speedup"] is None or adversarial["speedup"] <= 1.0:
        print(
            f"FAIL: repair ({adversarial['repair_seconds']:.2f}s) did not beat "
            f"recompute ({adversarial['recompute_seconds']:.2f}s)"
        )
        return 1
    if not args.quick:
        headline = next(r for r in rows if r["schedule"] == "append")
        if headline["speedup"] is None or headline["speedup"] < 3.0:
            print(
                f"FAIL: append-schedule repair speedup "
                f"{headline['speedup']:.2f}x < 3x acceptance target"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
