"""Figure 6.2 -- MovieLens average size vs wDist and TARGET-DIST.

(a) Average summary size as a function of wDist (same runs as 6.1a):
    larger wDist prioritizes distance, so less size reduction.
(b) Average size as a function of TARGET-DIST with wDist = 0: a looser
    distance budget lets the algorithm shrink further, with
    Prov-Approx reaching the smallest sizes (§6.6).
"""

from repro.core import SummarizationConfig
from repro.experiments import (
    check_shapes,
    execute,
    format_rows,
    mean_of,
    movielens_spec,
    series,
    target_dist_experiment,
    trend,
    weakly_monotone,
)

from repro.experiments.ascii_chart import chart_from_rows

from conftest import FAST_SEEDS, emit


def test_fig_6_2a_size_vs_wdist(benchmark, movielens_wdist_rows):
    rows = movielens_wdist_rows
    prov = series(rows, "w_dist", "avg_size", {"algorithm": "prov-approx"})
    prov_values = [value for _, value in prov]
    checks = [
        ("Prov-Approx size grows with wDist", trend(prov_values) >= 0.0),
        (
            "Prov-Approx (wDist=0) reaches the smallest size",
            prov_values[0]
            <= min(
                mean_of(rows, "avg_size", {"algorithm": "clustering"}),
                mean_of(rows, "avg_size", {"algorithm": "random"}),
            )
            + 1e-9,
        ),
    ]
    emit(
        "fig_6_2a",
        "MovieLens avg size vs wDist",
        format_rows(rows, ("algorithm", "w_dist", "avg_size", "avg_distance"))
        + "\n\n"
        + chart_from_rows(
            rows, x="w_dist", y="avg_size", split_by="algorithm", width=44, height=10
        )
        + "\n\n"
        + check_shapes(checks),
    )
    benchmark.pedantic(
        lambda: execute(
            movielens_spec(),
            "prov-approx",
            SummarizationConfig(w_dist=0.0, max_steps=20, seed=11),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(passed for _, passed in checks)


def test_fig_6_2b_size_vs_target_dist(benchmark):
    rows = benchmark.pedantic(
        lambda: target_dist_experiment(
            movielens_spec(),
            seeds=FAST_SEEDS,
            target_dists=(0.005, 0.01, 0.02, 0.04),
            max_steps=60,
        ),
        rounds=1,
        iterations=1,
    )
    prov = series(rows, "target_dist", "avg_size", {"algorithm": "prov-approx"})
    prov_values = [value for _, value in prov]
    random_values = [
        value
        for _, value in series(
            rows, "target_dist", "avg_size", {"algorithm": "random"}
        )
    ]
    checks = [
        (
            "size decreases (until a floor) as TARGET-DIST loosens",
            weakly_monotone(prov_values, "decreasing", tolerance=2.0),
        ),
        (
            "Prov-Approx reaches smaller sizes than Random",
            sum(prov_values) <= sum(random_values) + 1e-9,
        ),
    ]
    emit(
        "fig_6_2b",
        "MovieLens avg size vs TARGET-DIST (wDist=0)",
        format_rows(rows, ("algorithm", "target_dist", "avg_size", "avg_distance"))
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
