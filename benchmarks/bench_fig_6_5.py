"""Figure 6.5 -- candidate-computation and summarization times vs size.

One deep Prov-Approx run (wDist = 1, 50-step budget) is instrumented
per step: as the expression shrinks, fewer candidate pairs remain and
each distance computation gets cheaper, so both the per-candidate time
and the per-step summarization time fall with expression size (§6.9).
"""

import statistics

from repro.experiments import (
    check_shapes,
    format_rows,
    movielens_spec,
    timing_experiment,
)

from conftest import FAST_SEEDS, emit


def test_fig_6_5_timing(benchmark):
    rows = benchmark.pedantic(
        lambda: timing_experiment(movielens_spec(), seeds=FAST_SEEDS, max_steps=50),
        rounds=1,
        iterations=1,
    )
    assert rows, "the run must record steps"
    # Compare the first-third (largest sizes) with the last-third
    # (smallest sizes) of each run's step sequence.
    def thirds(metric):
        early, late = [], []
        for seed in {row["seed"] for row in rows}:
            seed_rows = [row for row in rows if row["seed"] == seed]
            cut = max(1, len(seed_rows) // 3)
            early.extend(row[metric] for row in seed_rows[:cut])
            late.extend(row[metric] for row in seed_rows[-cut:])
        return statistics.mean(early), statistics.mean(late)

    candidates_early, candidates_late = thirds("n_candidates")
    step_early, step_late = thirds("step_seconds")
    per_candidate_early, per_candidate_late = thirds("candidate_ms")
    checks = [
        (
            "the candidate pool shrinks as the expression shrinks",
            candidates_late <= candidates_early,
        ),
        (
            "per-step summarization time falls with size",
            step_late <= step_early * 1.10,
        ),
        (
            "per-candidate time falls with size",
            per_candidate_late <= per_candidate_early * 1.25,
        ),
    ]
    emit(
        "fig_6_5",
        "MovieLens candidate & summarization time vs provenance size",
        format_rows(
            rows[:40],
            (
                "seed",
                "step",
                "size_before",
                "n_candidates",
                "candidate_ms",
                "step_seconds",
            ),
        )
        + ("\n... (truncated)" if len(rows) > 40 else "")
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
