"""Figure 6.1 -- MovieLens average distance vs wDist and TARGET-SIZE.

(a) Average normalized distance as a function of wDist for the three
    algorithms (Cancel-Single-Attribute, MAX aggregation, ≤20 steps).
(b) Average distance as a function of TARGET-SIZE with wDist = 1.

Expected shapes (§6.4-§6.5): Prov-Approx's distance decreases as wDist
grows and beats Clustering for medium/large wDist; Random is worst; a
looser TARGET-SIZE (stopping earlier) yields smaller distance.
"""

import pytest

from repro.core import SummarizationConfig
from repro.experiments import (
    DEFAULT_SEEDS,
    MAX_STEPS,
    check_shapes,
    execute,
    format_rows,
    mean_of,
    movielens_spec,
    series,
    target_size_experiment,
    trend,
)

from repro.experiments.ascii_chart import chart_from_rows

from conftest import FAST_SEEDS, emit

COLUMNS = ("algorithm", "w_dist", "avg_distance", "avg_size", "avg_steps")


def test_fig_6_1a_distance_vs_wdist(benchmark, movielens_wdist_rows):
    rows = movielens_wdist_rows
    prov = series(rows, "w_dist", "avg_distance", {"algorithm": "prov-approx"})
    prov_values = [value for _, value in prov]
    checks = [
        (
            "Prov-Approx distance trends down as wDist grows",
            trend(prov_values) <= 1e-9,
        ),
        (
            "Prov-Approx (wDist=1) beats Clustering",
            prov_values[-1]
            <= mean_of(rows, "avg_distance", {"algorithm": "clustering"}) + 1e-9,
        ),
        (
            "Random has the largest distance",
            mean_of(rows, "avg_distance", {"algorithm": "random"})
            >= max(
                mean_of(rows, "avg_distance", {"algorithm": "clustering"}),
                prov_values[-1],
            )
            - 1e-9,
        ),
    ]
    emit(
        "fig_6_1a",
        "MovieLens avg distance vs wDist",
        format_rows(rows, COLUMNS)
        + "\n\n"
        + chart_from_rows(
            rows, x="w_dist", y="avg_distance", split_by="algorithm",
            width=44, height=10,
        )
        + "\n\n"
        + check_shapes(checks),
    )
    benchmark.pedantic(
        lambda: execute(
            movielens_spec(),
            "prov-approx",
            SummarizationConfig(w_dist=0.5, max_steps=MAX_STEPS["movielens"], seed=11),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    assert all(passed for _, passed in checks)


def test_fig_6_1b_distance_vs_target_size(benchmark):
    rows = benchmark.pedantic(
        lambda: target_size_experiment(
            movielens_spec(),
            seeds=FAST_SEEDS,
            size_fractions=(0.6, 0.7, 0.8, 0.9),
        ),
        rounds=1,
        iterations=1,
    )
    prov = series(
        rows, "target_size_fraction", "avg_distance", {"algorithm": "prov-approx"}
    )
    prov_values = [value for _, value in prov]
    checks = [
        (
            "looser TARGET-SIZE (earlier stop) gives smaller distance",
            trend(prov_values) <= 1e-9,
        ),
        (
            "Prov-Approx distance <= Random at the tightest target",
            prov_values[0]
            <= series(
                rows,
                "target_size_fraction",
                "avg_distance",
                {"algorithm": "random"},
            )[0][1]
            + 1e-9,
        ),
    ]
    emit(
        "fig_6_1b",
        "MovieLens avg distance vs TARGET-SIZE (wDist=1)",
        format_rows(
            rows,
            ("algorithm", "target_size_fraction", "avg_distance", "avg_size"),
        )
        + "\n\n"
        + chart_from_rows(
            rows,
            x="target_size_fraction",
            y="avg_distance",
            split_by="algorithm",
            width=44,
            height=10,
        )
        + "\n\n"
        + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
