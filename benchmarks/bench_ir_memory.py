#!/usr/bin/env python
"""Memory and rename throughput of the interned IR vs. the legacy dicts.

Runs the same MovieLens-scale polynomial workload twice, each in its
own subprocess with ``REPRO_IR`` pinned (the representation is chosen
at construction time, so the comparison needs process isolation):

* **build** -- construct a few hundred ``N[Ann]`` polynomials whose
  monomials overlap heavily (the provenance regime: many terms share
  the same user/movie annotations), then measure the *retained*
  polynomial storage with ``tracemalloc`` plus the process peak RSS;
* **rename** -- replay a sequence of summarization merges
  (``h : Ann → Ann'``) over every polynomial, the hot loop of
  Algorithm 1, and report renames/second.

Both workers emit a checksum over the final renamed polynomials
(sizes and term counts), and the driver asserts the two modes agree --
a bench run is also a differential test.  Results go to
``benchmarks/results/bench_ir_memory.txt`` and, machine-readably, to
``benchmarks/results/bench_ir_memory.json`` (uploaded by CI as a
workflow artifact).  Acceptance: >= 2x retained-memory reduction and a
rename speedup > 1x at the default scale.

``--quick`` shrinks the workload for CI smoke (ratios are reported but
not enforced).

Usage::

    PYTHONPATH=src python benchmarks/bench_ir_memory.py [--quick]
        [--names N] [--polys N] [--terms N] [--rounds N]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

RESULTS_PATH = Path(__file__).parent / "results" / "bench_ir_memory.txt"
RESULTS_JSON_PATH = Path(__file__).parent / "results" / "bench_ir_memory.json"


def monomial_pool(rng, names, size):
    """The distinct monomials of the workload, as plain spec lists.

    Provenance polynomials repeat monomials heavily across groups (the
    same user/movie co-occurrences annotate many answers), so each
    polynomial samples from this pool.
    """
    pool = []
    for _ in range(size):
        pool.append(
            sorted(
                (name, rng.choice((1, 1, 2)))
                for name in rng.sample(names, rng.choice((1, 2, 2, 3)))
            )
        )
    return pool


def build_terms(rng, pool, n_terms):
    """One polynomial's terms, materializing *fresh* monomial tuples.

    Every real construction site (``from_expression``, products,
    renames) builds its own tuples; the legacy representation retains
    each copy as a dict key while the IR interns the content once.
    """
    terms = {}
    for _ in range(n_terms):
        monomial = tuple(tuple(pair) for pair in rng.choice(pool))
        terms[monomial] = terms.get(monomial, 0) + rng.randint(1, 3)
    return terms


def merge_plan(names, rounds):
    """Pairwise merge mappings, the shape Algorithm 1 produces."""
    plan = []
    alive = list(names)
    for step in range(rounds):
        first, second = alive[0], alive[1]
        merged = f"M{step}"
        plan.append({first: merged, second: merged})
        alive = [merged] + alive[2:]
    return plan


def run_worker(args) -> int:
    """Measure one mode in-process; print a JSON report to stdout."""
    import tracemalloc

    from repro.provenance import ir
    from repro.provenance.polynomial import Polynomial

    rng = random.Random(args.seed)
    names = [f"U{i}" for i in range(args.names)]
    pool = monomial_pool(rng, names, 3 * args.names)
    plan = merge_plan(names, args.rounds)

    # Terms are generated *inside* the traced region: the legacy
    # representation retains the monomial tuples as dict keys while the
    # IR interns and releases them, and that difference is the point.
    gc.collect()
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    build_started = time.perf_counter()
    polynomials = [
        Polynomial(build_terms(rng, pool, args.terms))
        for _ in range(args.polys)
    ]
    build_seconds = time.perf_counter() - build_started
    gc.collect()
    retained, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    retained_bytes = retained - baseline

    rename_started = time.perf_counter()
    renamed = polynomials
    for mapping in plan:
        renamed = [polynomial.rename(mapping) for polynomial in renamed]
    rename_seconds = time.perf_counter() - rename_started
    renames = len(plan) * len(polynomials)

    checksum = sum(polynomial.size() for polynomial in renamed) * 1000003 + sum(
        len(polynomial.terms()) for polynomial in renamed
    )
    try:
        import resource

        ru_maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except ImportError:  # pragma: no cover - non-POSIX
        ru_maxrss_kb = None
    print(
        json.dumps(
            {
                "mode": ir.active_mode(),
                "build_seconds": build_seconds,
                "builds_per_second": len(polynomials) / build_seconds,
                "retained_bytes": retained_bytes,
                "ru_maxrss_kb": ru_maxrss_kb,
                "rename_seconds": rename_seconds,
                "renames_per_second": renames / rename_seconds,
                "checksum": checksum,
            }
        )
    )
    return 0


def measure_mode(mode: str, args) -> dict:
    env = dict(os.environ, REPRO_IR=mode)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--worker",
        "--seed", str(args.seed),
        "--names", str(args.names),
        "--polys", str(args.polys),
        "--terms", str(args.terms),
        "--rounds", str(args.rounds),
    ]
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True, check=True
    )
    return json.loads(completed.stdout.splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small workload")
    parser.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--names", type=int, default=240, help="annotation pool size")
    parser.add_argument("--polys", type=int, default=300, help="polynomials built")
    parser.add_argument("--terms", type=int, default=60, help="monomials per polynomial")
    parser.add_argument("--rounds", type=int, default=25, help="merge rounds replayed")
    args = parser.parse_args(argv)

    if args.worker:
        return run_worker(args)
    if args.quick:
        args.names, args.polys, args.terms, args.rounds = 60, 60, 20, 8

    reports = {mode: measure_mode(mode, args) for mode in ("legacy", "ir")}
    legacy, interned = reports["legacy"], reports["ir"]
    if legacy["checksum"] != interned["checksum"]:
        print("FAIL: the two representations disagree on the renamed workload")
        return 1

    memory_reduction = legacy["retained_bytes"] / max(interned["retained_bytes"], 1)
    rename_speedup = legacy["rename_seconds"] / interned["rename_seconds"]
    build_ratio = legacy["build_seconds"] / interned["build_seconds"]

    lines = [
        f"workload: names={args.names} polys={args.polys} "
        f"terms={args.terms} rounds={args.rounds} seed={args.seed} "
        f"quick={args.quick}",
        "",
        f"{'mode':<8} {'retained-MB':>12} {'peak-RSS-MB':>12} "
        f"{'build-s':>9} {'rename-s':>10} {'renames/s':>11}",
    ]
    for mode in ("legacy", "ir"):
        report = reports[mode]
        rss = (
            f"{report['ru_maxrss_kb'] / 1024:.1f}"
            if report["ru_maxrss_kb"] is not None
            else "n/a"
        )
        lines.append(
            f"{mode:<8} {report['retained_bytes'] / 1e6:>12.2f} {rss:>12} "
            f"{report['build_seconds']:>9.3f} {report['rename_seconds']:>10.3f} "
            f"{report['renames_per_second']:>11.0f}"
        )
    lines += [
        "",
        f"polynomial memory reduction: {memory_reduction:.2f}x",
        f"rename speedup:              {rename_speedup:.2f}x",
        f"build speedup:               {build_ratio:.2f}x",
        "both modes produced the identical renamed workload",
    ]
    body = "\n".join(lines)
    print(body)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(body + "\n")
    payload = {
        "benchmark": "ir_memory",
        "quick": args.quick,
        "workload": {
            "names": args.names,
            "polys": args.polys,
            "terms": args.terms,
            "rounds": args.rounds,
            "seed": args.seed,
        },
        "modes": reports,
        "memory_reduction": memory_reduction,
        "rename_speedup": rename_speedup,
        "build_speedup": build_ratio,
        "identical_workload": True,
    }
    RESULTS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwritten to {RESULTS_PATH}")
    print(f"written to {RESULTS_JSON_PATH}")

    if not args.quick and memory_reduction < 2.0:
        print("FAIL: expected >= 2x polynomial memory reduction")
        return 1
    if not args.quick and rename_speedup <= 1.0:
        print("FAIL: expected a rename speedup over the legacy dicts")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
