#!/usr/bin/env python
"""Speedup of the scoring engine vs. the seed serial scorer.

Runs the same greedy summarization (MovieLens-style provenance, steps
with hundreds of candidates) under several engine configurations:

* ``seed``         -- ``parallelism=0, incremental=off``: the dense
  serial :class:`FastStepScorer` rebuilt every step (the pre-engine
  behavior);
* ``incremental``  -- ``parallelism=0, incremental=on``: the sparse
  :class:`IncrementalStepScorer` carried across steps;
* ``parallel-N``   -- ``parallelism=N, incremental=on``: the carried
  scorer sharded over N pre-forked workers.

All modes must produce the identical merge sequence (asserted); the
table reports pure candidate-scoring seconds (the Fig. 6.5a quantity)
and the speedup over ``seed``.  Results are written to
``benchmarks/results/parallel_scoring.txt`` and, machine-readably, to
``benchmarks/results/parallel_scoring.json`` (the file CI uploads as
a workflow artifact).

``--quick`` runs a small instance (CI smoke): it exercises every mode,
asserts equivalence, and skips the speedup expectations.  ``--seed``
varies the generated instance (and the summarizer RNG) so regressions
can be checked across instances, not just one.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scoring.py [--quick]
        [--seed N] [--users N] [--movies N] [--steps N] [--workers 2,4]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (  # noqa: E402
    DistanceComputer,
    MappingState,
    ScoringEngine,
    SummarizationConfig,
    Summarizer,
    enumerate_candidates,
    shm,
)
from repro.datasets import MovieLensConfig, generate_movielens  # noqa: E402

#: Generous bound on the per-candidate bytes a worker may return: an
#: (index, size, distance) triple pickles to a few dozen bytes and is
#: independent of ``n_vals``; the pre-shm path returned kilobytes.
PAYLOAD_BYTES_PER_CANDIDATE = 120

RESULTS_PATH = Path(__file__).parent / "results" / "parallel_scoring.txt"
RESULTS_JSON_PATH = Path(__file__).parent / "results" / "parallel_scoring.json"


def build_problem(n_users: int, n_movies: int, seed: int = 0):
    """MovieLens-style provenance sized for wide steps.

    The default attribute constraints admit most user pairs, so 48
    users yield ~800 candidates per step; many movies with few ratings
    per user keep each candidate's neighborhood small relative to the
    group count -- the regime the incremental scorer targets.
    """
    return generate_movielens(
        MovieLensConfig(
            n_users=n_users,
            n_movies=n_movies,
            min_ratings_per_user=3,
            max_ratings_per_user=5,
            seed=seed,
        )
    ).problem()


def run_mode(n_users, n_movies, steps, seed=0, **knobs):
    problem = build_problem(n_users, n_movies, seed=seed)
    config = SummarizationConfig(w_dist=0.7, max_steps=steps, seed=seed, **knobs)
    result = Summarizer(problem, config).run()
    scoring_seconds = sum(
        record.candidate_seconds * record.n_candidates for record in result.steps
    )
    return result, scoring_seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: small instance")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="instance-generation and summarizer RNG seed",
    )
    parser.add_argument("--users", type=int, default=48)
    parser.add_argument("--movies", type=int, default=60)
    parser.add_argument("--steps", type=int, default=5)
    parser.add_argument(
        "--workers",
        default="2,4",
        help="comma-separated worker counts for the parallel modes",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_users, n_movies, steps, workers = 16, 12, 2, [2]
    else:
        n_users, n_movies, steps = args.users, args.movies, args.steps
        try:
            workers = [int(w) for w in args.workers.split(",") if w]
        except ValueError:
            parser.error(f"--workers must be comma-separated integers, got {args.workers!r}")

    modes = [("seed", dict(parallelism=0, incremental="off"))]
    modes.append(("incremental", dict(parallelism=0, incremental="on")))
    for n in workers:
        modes.append(
            (f"parallel-{n}", dict(parallelism=n, incremental="on", parallel_threshold=1))
        )

    rows = []
    reference = None
    for label, knobs in modes:
        result, seconds = run_mode(n_users, n_movies, steps, seed=args.seed, **knobs)
        merges = [record.merged for record in result.steps]
        if reference is None:
            reference = merges
        elif merges != reference:
            print(f"FAIL: mode {label!r} diverged from the seed merge sequence")
            return 1
        candidates = max((r.n_candidates for r in result.steps), default=0)
        rows.append((label, seconds, result.n_steps, candidates))

    # Worker-payload audit: the shared-memory parallel path must return
    # only (index, size, distance) triples -- never the n_vals-scaled
    # pickled accumulators -- and must unlink every segment it created.
    problem = build_problem(n_users, n_movies, seed=args.seed)
    computer = DistanceComputer(
        problem.expression,
        problem.valuations,
        problem.val_func,
        problem.combiners,
        problem.universe,
    )
    engine = ScoringEngine(
        problem,
        SummarizationConfig(
            w_dist=0.7,
            seed=args.seed,
            parallelism=workers[0],
            parallel_threshold=1,
        ),
        computer,
    )
    current = problem.expression
    mapping = MappingState(sorted(current.annotation_names()))
    candidates = enumerate_candidates(
        current, problem.universe, problem.constraint
    )
    engine.measure(candidates, current, mapping)
    payload_bytes = engine.last_worker_payload_bytes
    if payload_bytes < 0:
        print("FAIL: the payload-audit step never went parallel")
        return 1
    payload_per_candidate = payload_bytes / len(candidates)
    if payload_per_candidate > PAYLOAD_BYTES_PER_CANDIDATE:
        print(
            f"FAIL: workers returned {payload_per_candidate:.0f} bytes per "
            f"candidate (> {PAYLOAD_BYTES_PER_CANDIDATE}); the triples-only "
            "contract is broken"
        )
        return 1
    leaked = glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}-*")
    if leaked:
        print(f"FAIL: orphaned shared-memory segments: {leaked}")
        return 1

    base = rows[0][1]
    lines = [
        f"instance: movielens n_users={n_users} n_movies={n_movies} "
        f"steps={steps} seed={args.seed} cores={os.cpu_count()}",
        f"widest step: {rows[0][3]} candidates",
        "",
        f"{'mode':<14} {'scoring-s':>10} {'speedup':>9}",
    ]
    for label, seconds, _, _ in rows:
        speedup = base / seconds if seconds > 0 else float("inf")
        lines.append(f"{label:<14} {seconds:>10.3f} {speedup:>8.2f}x")
    lines.append("")
    lines.append("all modes produced the identical merge sequence")
    lines.append(
        f"worker payload: {payload_per_candidate:.0f} bytes/candidate "
        f"(triples only; bound {PAYLOAD_BYTES_PER_CANDIDATE}), "
        "no shared-memory segments leaked"
    )
    body = "\n".join(lines)
    print(body)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(body + "\n")
    print(f"\nwritten to {RESULTS_PATH}")

    payload = {
        "benchmark": "parallel_scoring",
        "quick": args.quick,
        "instance": {
            "dataset": "movielens",
            "n_users": n_users,
            "n_movies": n_movies,
            "steps": steps,
            "seed": args.seed,
            "cores": os.cpu_count(),
        },
        "widest_step_candidates": rows[0][3],
        "worker_payload_bytes": payload_bytes,
        "worker_payload_bytes_per_candidate": payload_per_candidate,
        "modes": [
            {
                "mode": label,
                "scoring_seconds": seconds,
                "speedup_vs_seed": (base / seconds) if seconds > 0 else None,
                "steps": n_steps,
            }
            for label, seconds, n_steps, _ in rows
        ],
        "identical_merge_sequence": True,
    }
    RESULTS_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {RESULTS_JSON_PATH}")

    if not args.quick:
        incremental_speedup = base / rows[1][1] if rows[1][1] > 0 else float("inf")
        if incremental_speedup < 2.0 and (os.cpu_count() or 1) < 4:
            print(
                "note: < 4 cores; the 2x acceptance target applies to the "
                "incremental path on wide steps"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
