"""Ablation: beam width of the "A*-like" search (§4.2).

Algorithm 1 is greedy best-first; the thesis describes the search as
"A*-like".  This bench widens the frontier and measures what a beam
buys: quality (CandidateScore of the final summary) can only improve,
at a roughly beam-width-proportional cost in time.
"""

import statistics

from repro.core import SummarizationConfig
from repro.core.beam import BeamSummarizer
from repro.experiments import check_shapes, format_rows, movielens_spec

from conftest import FAST_SEEDS, emit

WIDTHS = (1, 2, 4)


def test_ablation_beam(benchmark):
    spec = movielens_spec()

    def sweep():
        rows = []
        for width in WIDTHS:
            results = [
                BeamSummarizer(
                    spec.factory(seed).problem(),
                    SummarizationConfig(w_dist=0.5, max_steps=10, seed=seed),
                    beam_width=width,
                ).run()
                for seed in FAST_SEEDS
            ]
            rows.append(
                {
                    "beam_width": width,
                    "avg_score": statistics.mean(
                        0.5 * r.final_distance.normalized
                        + 0.5 * r.final_size / r.original_size
                        for r in results
                    ),
                    "avg_distance": statistics.mean(
                        r.final_distance.normalized for r in results
                    ),
                    "avg_size": statistics.mean(r.final_size for r in results),
                    "avg_seconds": statistics.mean(r.total_seconds for r in results),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    scores = [row["avg_score"] for row in rows]
    times = [row["avg_seconds"] for row in rows]
    checks = [
        (
            "wider beams never worsen the optimized score",
            all(later <= earlier + 1e-9 for earlier, later in zip(scores, scores[1:])),
        ),
        (
            "cost grows with beam width",
            times[-1] >= times[0],
        ),
    ]
    emit(
        "ablation_beam",
        "beam width vs summary quality and cost",
        format_rows(rows) + "\n\n" + check_shapes(checks),
    )
    assert all(passed for _, passed in checks)
