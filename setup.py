"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` uses this
legacy path; all metadata lives in ``pyproject.toml``.

When a C compiler is on PATH the native kernel shared object is
compiled best-effort at build time so ``REPRO_KERNEL=native`` starts
warm; any failure is silently ignored -- the backend also compiles
lazily on first use and degrades to numpy/python when it cannot.
"""

import sys
from pathlib import Path

from setuptools import setup


def _prebuild_native() -> None:
    src = Path(__file__).resolve().parent / "src"
    sys.path.insert(0, str(src))
    try:
        from repro.core.kernels.native.build import ensure_built

        ensure_built()
    except Exception:
        pass
    finally:
        sys.path.remove(str(src))


_prebuild_native()

setup()
