"""Run the Figure 2.1 workflow and inspect the provenance it produces.

Reviewing modules crawl two platforms, update per-user statistics,
sanitize reviews through the activity guard, and an aggregator builds
per-movie provenance-aware values -- reproducing the exact expression
shape of Example 2.2.1, including the inequality tokens
``[S_i · U_i ⊗ n > 2]``.  Run with::

    python examples/workflow_provenance.py
"""

from repro.db import combined_aggregate
from repro.workflow import Review, run_movie_workflow


def main() -> None:
    users = {
        "1": {"role": "audience"},
        "2": {"role": "audience"},
        "3": {"role": "critic"},
        "4": {"role": "critic"},
    }
    reviews = {
        "imdb": [
            Review("1", "MatchPoint", 3),
            Review("1", "MatchPoint", 4),
            Review("1", "MatchPoint", 3),
            Review("2", "MatchPoint", 5),
            Review("2", "BlueJasmine", 4),
            Review("2", "BlueJasmine", 2),
        ],
        "times": [
            Review("3", "MatchPoint", 3),
            Review("3", "BlueJasmine", 1),
            Review("3", "MatchPoint", 2),
            Review("4", "MatchPoint", 4),  # only 1 review: guard filters it
        ],
    }
    run, database = run_movie_workflow(users, reviews, threshold=2)

    print("Stats table after the run:")
    for row in database["Stats"]:
        print(f"  {row}")
    print()

    print("per-movie provenance-aware values (Example 2.2.1 shape):")
    for row in run["aggregator"]:
        print(f"  {row['movie']}: {row.values['agg']}")
    print()

    expression = combined_aggregate(run["aggregator"]).to_tensor_sum()
    print(f"combined tensor sum (size {expression.size()}):")
    full = expression.full_vector()
    print("  aggregated ratings:",
          {movie: agg.finalized_value() for movie, agg in full.items()})

    print()
    print("provisioning (Example 2.3.1): cancel user 2's statistics")
    adjusted = expression.evaluate(frozenset({"S_2"}))
    print("  ->", {movie: agg.finalized_value() for movie, agg in adjusted.items()})
    print("user 4 never passes the activity guard "
          "([S_4 · U_4 ⊗ 1 > 2] is statically false): their 4-star review "
          "never reaches the aggregate.")


if __name__ == "__main__":
    main()
