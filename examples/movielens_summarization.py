"""MovieLens summarization: Prov-Approx vs Clustering vs Random.

Generates a synthetic MovieLens provenance instance (Table 5.1 row 1),
runs the three §6.1 algorithms under the same constraints and step
budget, and reports the size/distance each achieves -- a single data
point of Figures 6.1-6.2.  Run with::

    python examples/movielens_summarization.py [seed]
"""

import sys

from repro.core import (
    ClusteringSummarizer,
    RandomSummarizer,
    SummarizationConfig,
    Summarizer,
)
from repro.datasets import MovieLensConfig, generate_movielens


def main(seed: int = 11) -> None:
    config = MovieLensConfig(n_users=30, n_movies=12, seed=seed)
    budget = SummarizationConfig(w_dist=0.5, max_steps=20, seed=seed)
    print(f"MovieLens instance (seed {seed}):")
    probe = generate_movielens(config)
    print(f"  {len(probe.universe.in_domain('user'))} users, "
          f"{len(probe.universe.in_domain('movie'))} movies, "
          f"provenance size {probe.expression.size()}")
    print(f"  valuation class: {probe.valuations.name} ({len(probe.valuations)})")
    print()

    print(f"{'algorithm':<14} {'size':>6} {'distance':>9} {'steps':>6} {'seconds':>8}")
    for name in ("prov-approx", "clustering", "random"):
        instance = generate_movielens(config)  # fresh universe per run
        problem = instance.problem()
        if name == "prov-approx":
            result = Summarizer(problem, budget).run()
        elif name == "clustering":
            result = ClusteringSummarizer(
                problem, budget, instance.cluster_specs
            ).run()
        else:
            result = RandomSummarizer(problem, budget).run()
        print(
            f"{name:<14} {result.final_size:>6} "
            f"{result.final_distance.normalized:>9.4f} "
            f"{result.n_steps:>6} {result.total_seconds:>8.2f}"
        )

    print()
    instance = generate_movielens(config)
    result = Summarizer(instance.problem(), budget).run()
    print("Prov-Approx merge log (first 8 steps):")
    for record in result.steps[:8]:
        print(
            f"  step {record.step}: {{{', '.join(record.merged)}}} -> "
            f"{record.label}  (size {record.size_after}, "
            f"distance {record.distance_after.normalized:.4f})"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
