"""Drive the PROX system (Chapter 7) end to end.

Walks the three web-UI views as a Python session: select movies,
configure and run the summarization, inspect the groups/expression
views, and provision hypothetical scenarios on both the original and
the summarized provenance -- comparing answers and evaluation times as
Figures 7.9/7.10 do.  Run with::

    python examples/prox_session.py
"""

from repro.prox import ProxSession, SummarizationRequest


def main() -> None:
    session = ProxSession(seed=7)

    # --- selection view ---------------------------------------------------
    print("available movies:", ", ".join(session.titles()[:6]), "...")
    print("search 'titan':", ", ".join(session.titles("titan")))
    size = session.select_by(genre="horror")
    print(f"selected horror provenance: size {size}")
    print()

    # --- summarization view --------------------------------------------------
    request = SummarizationRequest(
        distance_weight=0.7,
        number_of_steps=6,
        aggregation="MAX",
        valuation_class="Cancel Single Attribute",
        val_func="Euclidean Distance",
    )
    result = session.summarize(request)
    print(f"summarized in {result.n_steps} steps "
          f"(stop: {result.stop_reason}), "
          f"distance {result.final_distance.normalized:.4f}")
    print()

    # --- summary view: expression ---------------------------------------------
    print("expression view:")
    print(session.expression_view())
    print()

    # --- summary view: groups ---------------------------------------------------
    print("groups view:")
    for group in session.groups_view():
        shared = ", ".join(f"{k}={v}" for k, v in group.shared_attributes.items())
        print(f"  {group.annotation} (size {group.size}): "
              f"members [{', '.join(group.members)}] shared [{shared}]")
    print()

    # --- provisioning -------------------------------------------------------------
    print("evaluate assignment: cancel all Male users")
    original, summary = session.evaluate(false_attributes={"gender": "M"})
    print(f"  original ratings: {dict(original.rows())} "
          f"({original.evaluation_time_ns} ns)")
    print(f"  summary ratings : {dict(summary.rows())} "
          f"({summary.evaluation_time_ns} ns)")


if __name__ == "__main__":
    main()
