"""Wikipedia edits with taxonomy-constrained summarization (Example 5.2.1).

Pages are instances of WordNet concepts (singer, guitarist, ...); page
merges must share a taxonomy ancestor, and the summary annotation is
named by the lowest common ancestor -- so the output reads like the
thesis's ``(Top-Contributor · <wordnet_guitarist>) ⊗ (2, 2) ⊕ ...``.
Run with::

    python examples/wikipedia_taxonomy.py
"""

from repro.core import SummarizationConfig, Summarizer
from repro.datasets import WikipediaConfig, generate_wikipedia
from repro.taxonomy import wu_palmer_similarity


def main() -> None:
    instance = generate_wikipedia(WikipediaConfig(n_users=12, n_pages=10, seed=21))
    taxonomy = instance.taxonomy
    print("pages and their WordNet concepts:")
    for page in instance.universe.in_domain("page"):
        print(f"  {page.name:<22} {page.concept}")
    print()
    print(f"original provenance (size {instance.expression.size()}):")
    print(f"  {instance.expression}")
    print()

    result = Summarizer(
        instance.problem(),
        SummarizationConfig(w_dist=0.7, max_steps=10, seed=0),
    ).run()
    print(f"summary (size {result.final_size}, "
          f"distance {result.final_distance.normalized:.4f}):")
    print(f"  {result.summary_expression}")
    print()

    print("groups chosen by the algorithm:")
    for name, members in result.summary_groups().items():
        annotation = result.universe[name]
        if annotation.domain == "page" and annotation.concept:
            similarities = ", ".join(
                f"{member}~{wu_palmer_similarity(taxonomy, result.universe[member].concept, annotation.concept):.2f}"
                for member in members
                if result.universe[member].concept
            )
            print(f"  {name} (concept {annotation.concept}): {similarities}")
        else:
            shared = dict(annotation.attributes)
            print(f"  {name}: {', '.join(members)}  shared={shared}")


if __name__ == "__main__":
    main()
