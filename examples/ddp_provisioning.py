"""Data-Dependent Process provenance and provisioning (Example 5.2.2).

Builds the thesis's two-execution DDP example, evaluates hypothetical
scenarios over the tropical semiring, then summarizes a generated DDP
instance and compares exact vs approximate provisioning.  Run with::

    python examples/ddp_provisioning.py
"""

from repro.core import SummarizationConfig, Summarizer
from repro.datasets import DDPConfig, generate_ddp
from repro.provenance import (
    CostTransition,
    DBTransition,
    DDPExpression,
    Execution,
    Valuation,
)


def thesis_example() -> None:
    print("--- Example 5.2.2 -------------------------------------------")
    expression = DDPExpression(
        [
            Execution([CostTransition("c1", 4.0), DBTransition(("d1", "d2"), "!=")]),
            Execution([DBTransition(("d2", "d3"), "=="), CostTransition("c2", 6.0)]),
        ]
    )
    print(f"provenance: {expression}")
    print(f"all-true evaluation: {expression.evaluate(frozenset())}")
    cancel_costs = Valuation({"c1": 0.0, "c2": 0.0})
    print(f"cancel all costs (the thesis's valuation): "
          f"{expression.evaluate_valuation(cancel_costs)}")
    print(f"cancel d1 (query fails everywhere): "
          f"{expression.evaluate(frozenset({'d1'}))}")
    print(f"cancel d1 and d3 (equality guard now holds): "
          f"{expression.evaluate(frozenset({'d1', 'd3'}))}")
    print()


def generated_instance() -> None:
    print("--- generated DDP instance ----------------------------------")
    instance = generate_ddp(DDPConfig(seed=13))
    expression = instance.expression
    print(f"{len(expression.executions)} executions, size {expression.size()}")
    result = Summarizer(
        instance.problem(),
        SummarizationConfig(w_dist=0.5, max_steps=10, seed=0),
    ).run()
    print(f"summary: {result.n_steps} steps "
          f"(+{result.equivalence_merges} equivalence merges), "
          f"size {result.original_size} -> {result.final_size}, "
          f"distance {result.final_distance.normalized:.4f}")

    # Provision: what if every cheap transition were free?
    cheap = [
        annotation.name
        for annotation in instance.universe.in_domain("cost")
        if not annotation.is_summary and annotation.attributes["cost"] <= 4
    ]
    scenario = Valuation({name: 0.0 for name in cheap})
    exact = expression.evaluate_valuation(scenario)
    lifted = instance.combiners.lift_valuation(scenario, result.mapping, result.universe)
    approx = result.summary_expression.evaluate_valuation(lifted)
    print(f"scenario 'cheap transitions are free' ({len(cheap)} cost vars):")
    print(f"  exact       : {exact}")
    print(f"  via summary : {approx}")


if __name__ == "__main__":
    thesis_example()
    generated_instance()
