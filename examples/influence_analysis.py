"""Influence analysis: who actually drives the aggregated ratings?

The thesis's introduction motivates provenance with questions like
"what is the basis for trusting a rating?" and "how does the result
change if we discard a suspicious contribution?".  This example uses
the influence API to answer them and then shows that Algorithm 1 with
a high wDist keeps the influential users out of merged groups.  Run
with::

    python examples/influence_analysis.py
"""

from repro.core import (
    EuclideanDistance,
    SummarizationConfig,
    Summarizer,
    annotation_influence,
    group_influence,
    rank_influential,
)
from repro.datasets import MovieLensConfig, generate_movielens
from repro.provenance import MAX


def main() -> None:
    instance = generate_movielens(MovieLensConfig(n_users=20, n_movies=8, seed=31))
    expression = instance.expression
    val_func = EuclideanDistance(MAX)

    print("Top 5 most influential users (effect of discarding each):")
    influences = annotation_influence(
        expression,
        val_func,
        annotations=[u.name for u in instance.universe.in_domain("user")],
    )
    for name, influence in rank_influential(influences, top=5):
        user = instance.universe[name]
        print(f"  {name}: {influence:.2f}  "
              f"({user.attributes['gender']}, {user.attributes['age_range']}, "
              f"{user.attributes['occupation']})")

    print()
    print("Influence of whole attribute groups (the what-if of Fig. 7.10):")
    for attribute in ("gender", "age_range"):
        groups = group_influence(expression, val_func, instance.universe, attribute)
        for value, influence in rank_influential(
            {str(k): v for k, v in groups.items()}, top=3
        ):
            print(f"  cancel {attribute}={value}: total effect {influence:.2f}")

    print()
    print("Does summarization protect the influential users?")
    result = Summarizer(
        instance.problem(), SummarizationConfig(w_dist=1.0, max_steps=12, seed=0)
    ).run()
    merged = {
        member
        for members in result.summary_groups().values()
        for member in members
    }
    top_names = [name for name, _ in rank_influential(influences, top=3)]
    for name in top_names:
        state = "merged into a group" if name in merged else "kept separate"
        print(f"  {name} (influence {influences[name]:.2f}): {state}")
    print(f"summary distance: {result.final_distance.normalized:.4f} "
          f"at size {result.original_size} -> {result.final_size}")


if __name__ == "__main__":
    main()
