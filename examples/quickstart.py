"""Quickstart: summarize the thesis's running example.

Builds the movie-review provenance of Examples 2.2.1 / 3.1.1 / 4.2.3
by hand, runs Algorithm 1, and uses the summary for approximate
provisioning.  Run with::

    python examples/quickstart.py
"""

from repro.core import (
    DomainCombiners,
    DomainConstraints,
    EuclideanDistance,
    SharedAttribute,
    SummarizationConfig,
    SummarizationProblem,
    Summarizer,
)
from repro.provenance import (
    MAX,
    Annotation,
    AnnotationUniverse,
    CancelSingleAnnotation,
    TensorSum,
    Term,
    cancel,
)


def main() -> None:
    # --- the data: three users review "Match Point", one of them also
    # reviews "Blue Jasmine" (Example 4.2.3) ------------------------------
    universe = AnnotationUniverse()
    universe.register(Annotation("U1", "user", {"gender": "F", "role": "audience"}))
    universe.register(Annotation("U2", "user", {"gender": "F", "role": "critic"}))
    universe.register(Annotation("U3", "user", {"gender": "M", "role": "audience"}))

    provenance = TensorSum(
        [
            Term(("U1",), 3.0, group="MatchPoint"),
            Term(("U2",), 5.0, group="MatchPoint"),
            Term(("U3",), 3.0, group="MatchPoint"),
            Term(("U2",), 4.0, group="BlueJasmine"),
        ],
        MAX,
    )
    print("original provenance:")
    print(f"  {provenance}")
    print(f"  size = {provenance.size()}")

    # --- the summarization problem: who may merge, what distance means ---
    problem = SummarizationProblem(
        expression=provenance,
        universe=universe,
        valuations=CancelSingleAnnotation(universe, domains=("user",)),
        val_func=EuclideanDistance(MAX),
        combiners=DomainCombiners(),
        constraint=DomainConstraints({"user": SharedAttribute(("gender", "role"))}),
        description="thesis running example",
    )
    print()
    print(problem.describe())

    # --- run Algorithm 1 with wDist = 1 (distance-first) ------------------
    result = Summarizer(
        problem,
        SummarizationConfig(w_dist=1.0, max_steps=1, group_equivalent_first=False),
    ).run()
    print()
    print("summary after one step:")
    print(f"  {result.summary_expression}")
    print(f"  size = {result.final_size}, "
          f"distance = {result.final_distance.normalized:.4f}, "
          f"stop = {result.stop_reason}")
    for name, members in result.summary_groups().items():
        print(f"  group {name}: {', '.join(members)}")

    # --- approximate provisioning: what if U2 were a spammer? ------------
    scenario = cancel(["U2"])
    original_answer = provenance.evaluate(scenario.false_set())
    lifted = problem.combiners.lift_valuation(scenario, result.mapping, universe)
    summary_answer = result.summary_expression.evaluate(lifted.false_set())
    print()
    print("provisioning 'ignore U2':")
    print("  original:", {k: v.finalized_value() for k, v in original_answer.items()})
    print("  summary :", {k: v.finalized_value() for k, v in summary_answer.items()})


if __name__ == "__main__":
    main()
